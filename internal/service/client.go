package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/store"
)

// RetryPolicy bounds client-side retries of transient request failures:
// transport errors (connection refused, dropped responses), HTTP 5xx, and
// 429. Backoff between attempts is capped exponential with equal jitter,
// seeded so a run's retry timing is reproducible.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request; <= 1 disables
	// retries.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it up to MaxBackoff. Zero values mean 50ms base, 2s cap.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the jitter stream; the same seed replays the same backoff
	// schedule.
	Seed int64
}

// Client talks to a qsmd server; qsmbench -server is built on it.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Retry bounds per-request retries; the zero value makes every request
	// single-shot.
	Retry RetryPolicy
	// RequestTimeout bounds each attempt (not the whole retry loop), layered
	// under the caller's context. 0 means no per-attempt limit.
	RequestTimeout time.Duration
	// TraceID, when a valid trace ID, is sent as the X-Qsm-Trace header on
	// every request — every attempt of every retry reuses the same ID, so
	// the server stitches a whole client conversation (submit, polls,
	// result fetch) into one trace. Empty disables propagation; the server
	// then mints a fresh ID per request. When TraceID is empty but the
	// request context carries an obs.TraceContext, that context's ID is
	// propagated instead — this is how a cluster node forwarding a request
	// keeps the inbound request's trace ID on the hop to the owning peer.
	TraceID string
	// Headers, when non-nil, is added to every request. Cluster peer
	// clients use it to mark forwarded requests (X-Qsm-Forwarded) so the
	// receiving node serves them locally instead of re-forwarding.
	Headers map[string]string
	// Tracer, when non-nil, records one "client"-layer wall-clock span per
	// attempt (retries get their own spans under the same trace ID).
	Tracer *obs.WallTracer
	// Log, when enabled, records one line per retried attempt and per
	// exhausted retry budget.
	Log *obs.Logger

	jitterMu sync.Mutex
	jitter   *rand.Rand
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// backoff returns the equal-jitter delay before retry number n (1-based):
// half the capped exponential step plus a seeded random draw of the other
// half.
func (c *Client) backoff(n int) time.Duration {
	base := c.Retry.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxB := c.Retry.MaxBackoff
	if maxB <= 0 {
		maxB = 2 * time.Second
	}
	d := base << (n - 1)
	if d <= 0 || d > maxB { // <= 0 catches shift overflow
		d = maxB
	}
	c.jitterMu.Lock()
	if c.jitter == nil {
		c.jitter = stats.NewRand(c.Retry.Seed, 0x636c69656e74) // "client"
	}
	half := d / 2
	d = half + time.Duration(c.jitter.Int63n(int64(half)+1))
	c.jitterMu.Unlock()
	return d
}

// retryable reports whether an attempt outcome warrants another try:
// transport-level failures (status 0), server errors, and queue-full
// pushback. Other 4xx are the caller's bug and retrying cannot help.
func retryable(status int, err error) bool {
	if err != nil && status == 0 {
		return true
	}
	return status >= 500 || status == http.StatusTooManyRequests
}

// do issues a request with bounded retries, decoding the JSON response into
// out. Each attempt runs under RequestTimeout; transient failures back off
// and retry while the policy's budget and the caller's context allow.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return err
		}
	}
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for n := 1; ; n++ {
		status, err := c.once(ctx, method, path, data, out, n)
		if err == nil {
			return nil
		}
		lastErr = err
		if n >= attempts || ctx.Err() != nil || !retryable(status, err) {
			if n > 1 {
				c.log().Warn("request failed after retries",
					"method", method, "path", path, "attempts", n, "err", lastErr)
				return fmt.Errorf("qsmd: %d attempts failed: %w", n, lastErr)
			}
			return lastErr
		}
		c.log().Warn("request attempt failed, retrying",
			"method", method, "path", path, "attempt", n, "status", status, "err", err)
		t := time.NewTimer(c.backoff(n))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("qsmd: %d attempts failed: %w", n, lastErr)
		}
	}
}

// log returns the client's logger scoped to its trace ID (nil-safe).
func (c *Client) log() *obs.Logger {
	if c.Log.Enabled() && obs.ValidTraceID(c.TraceID) {
		return c.Log.With("trace_id", c.TraceID)
	}
	return c.Log
}

// traceID resolves the ID propagated with a request: the client's own
// TraceID when set, else the ID of an obs.TraceContext carried by ctx.
func (c *Client) traceID(ctx context.Context) string {
	if obs.ValidTraceID(c.TraceID) {
		return c.TraceID
	}
	if tc := obs.TraceContextFrom(ctx); tc != nil && obs.ValidTraceID(tc.ID) {
		return tc.ID
	}
	return ""
}

// once issues a single attempt. The returned status is 0 for
// transport-level failures and the HTTP status otherwise.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any, attempt int) (status int, err error) {
	traceID := c.traceID(ctx)
	if c.Tracer.Enabled() && obs.ValidTraceID(traceID) {
		sp := c.Tracer.Start(traceID, "client", "request",
			method+" "+path,
			obs.WArg{Key: "attempt", Val: strconv.Itoa(attempt)})
		defer func() {
			if err != nil {
				sp.Annotate("error", err.Error())
			} else {
				sp.Annotate("status", strconv.Itoa(status))
			}
			sp.End()
		}()
	}
	if c.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.RequestTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if obs.ValidTraceID(traceID) {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	for k, v := range c.Headers {
		req.Header.Set(k, v)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return resp.StatusCode, fmt.Errorf("qsmd: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return resp.StatusCode, fmt.Errorf("qsmd: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return resp.StatusCode, nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

// Submit posts one job.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (JobStatus, error) {
	var js JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &js)
	return js, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var js JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &js)
	return js, err
}

// Result fetches a cached result entry by content address.
func (c *Client) Result(ctx context.Context, key string) (*store.Entry, error) {
	var e store.Entry
	if err := c.do(ctx, http.MethodGet, "/v1/results/"+url.PathEscape(key), nil, &e); err != nil {
		return nil, err
	}
	return &e, nil
}

// PutResult pushes a complete result entry to the server's store; cluster
// nodes use it to replicate an owner's freshly computed entries to the
// key's successor replicas. The receiving node verifies the entry's key and
// checksum before accepting it.
func (c *Client) PutResult(ctx context.Context, e *store.Entry) error {
	return c.do(ctx, http.MethodPut, "/v1/results/"+url.PathEscape(e.Key), e, nil)
}

// HealthStatus is the /healthz payload.
type HealthStatus struct {
	Status      string `json:"status"`
	Fingerprint string `json:"fingerprint"`
}

// Health fetches the server's liveness and code fingerprint; cluster health
// checks use it to detect dead peers and fingerprint skew.
func (c *Client) Health(ctx context.Context) (HealthStatus, error) {
	var h HealthStatus
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// JobTrace fetches a job's merged Perfetto trace as raw JSON.
func (c *Client) JobTrace(ctx context.Context, id string) (json.RawMessage, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/trace", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, nil)
}

// Wait polls a job at the given interval until it reaches a terminal state
// (done or failed), calling onPoll (when non-nil) with each observed
// status. It returns the terminal status; reaching a terminal state is not
// an error even when the job failed.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration, onPoll func(JobStatus)) (JobStatus, error) {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		js, err := c.Job(ctx, id)
		if err != nil {
			return js, err
		}
		if onPoll != nil {
			onPoll(js)
		}
		if js.State == StateDone || js.State == StateFailed {
			return js, nil
		}
		select {
		case <-ctx.Done():
			return js, ctx.Err()
		case <-t.C:
		}
	}
}
