package service

// In-package backpressure tests: the publisher side of the streaming layer
// must never block on a consumer. These drive eventLog and serveStream
// directly with a tiny buffer and a deliberately stuck writer, pinning the
// properties the scheduler depends on — publish returns in bounded time no
// matter what subscribers do, a slow subscriber loses events only for
// itself, and the gap it suffers is surfaced as a dropped marker whose
// resume_id is exactly the last event it was sent.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// publishN appends n state-like events to l.
func publishN(l *eventLog, from, n int) {
	for i := 0; i < n; i++ {
		l.publish(EventProgress, []byte(fmt.Sprintf(`{"seq":%d}`, from+i)), false, false)
	}
}

// TestPublishNeverBlocksOnStuckSubscriber is the scheduler-safety property:
// publish must return promptly even when a subscriber's buffer is full and
// nobody is draining it. Run under -race this also proves the fan-out path
// is properly synchronized.
func TestPublishNeverBlocksOnStuckSubscriber(t *testing.T) {
	hub := newStreamHub()
	l := newEventLog("job-x", 64, hub)
	sub, cancel := l.subscribe(0, "test", 2)
	defer cancel()

	done := make(chan struct{})
	go func() {
		publishN(l, 1, 100) // 50x the subscriber's buffer, never drained
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a stuck subscriber")
	}

	if got := sub.dropped.Load(); got != 98 {
		t.Errorf("subscriber dropped = %d, want 98 (100 published into a 2-slot buffer)", got)
	}
	if got := hub.dropped.Load(); got != 98 {
		t.Errorf("hub dropped = %d, want 98", got)
	}
	if got := hub.published.Load(); got != 100 {
		t.Errorf("hub published = %d, want 100", got)
	}
}

// TestSlowSubscriberDoesNotStarveOthers: one stuck consumer and one healthy
// consumer on the same log; the healthy one receives every event.
func TestSlowSubscriberDoesNotStarveOthers(t *testing.T) {
	l := newEventLog("job-x", 64, newStreamHub())
	stuck, cancelStuck := l.subscribe(0, "stuck", 1)
	defer cancelStuck()
	healthy, cancelHealthy := l.subscribe(0, "healthy", 64)
	defer cancelHealthy()

	publishN(l, 1, 32)
	l.publish(EventState, []byte(`{"state":"done"}`), true, false)

	<-healthy.done
	var got int
	for {
		select {
		case <-healthy.ch:
			got++
			continue
		default:
		}
		break
	}
	if got != 33 {
		t.Errorf("healthy subscriber received %d events, want all 33", got)
	}
	if stuck.dropped.Load() == 0 {
		t.Error("stuck subscriber dropped nothing; the backpressure path never engaged")
	}
}

// stallingRecorder is a ResponseWriter whose Write blocks until released,
// simulating a consumer that stops reading while the handler tries to flush
// events to it.
type stallingRecorder struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	header  http.Header
	stalled chan struct{} // closed once a Write has blocked
	release chan struct{}
	once    sync.Once
}

func newStallingRecorder() *stallingRecorder {
	return &stallingRecorder{
		header:  http.Header{},
		stalled: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (w *stallingRecorder) Header() http.Header { return w.header }
func (w *stallingRecorder) WriteHeader(int)     {}
func (w *stallingRecorder) Flush()              {}

func (w *stallingRecorder) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.stalled) })
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *stallingRecorder) contents() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeStreamEmitsDroppedMarkerWithResumeID drives the full handler
// against a consumer that stalls mid-stream: the handler's first write
// blocks (the subscriber channel backs up and overflows), publishing
// continues unharmed, and once the consumer unsticks, the handler surfaces
// the gap as an id-less dropped marker whose resume_id is the last event it
// actually delivered — the ID a reconnecting client would resume from.
func TestServeStreamEmitsDroppedMarkerWithResumeID(t *testing.T) {
	s := &Scheduler{cfg: Config{StreamBuffer: 2, StreamHeartbeat: time.Hour}}
	s.streams = newStreamHub()
	l := newEventLog("job-x", 64, s.streams)

	// Publishing event 1 before the handler exists makes the schedule
	// deterministic: the subscription replays it (one extra buffer slot on
	// top of StreamBuffer=2), the handler pulls it and wedges in the stalled
	// Write, and exactly events 2-4 fit in the buffer behind it.
	l.publish(EventProgress, []byte(`{"seq":1}`), false, false)

	w := newStallingRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/job-x/events", nil)
	served := make(chan struct{})
	go func() {
		s.serveStream(w, req, l)
		close(served)
	}()
	select {
	case <-w.stalled:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never attempted a write")
	}

	// With the handler wedged, the publisher keeps going: the buffer absorbs
	// three events and the rest drop. publish must stay prompt.
	start := time.Now()
	publishN(l, 2, 20)
	l.publish(EventState, []byte(`{"state":"done"}`), true, false)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("publishing against a wedged handler took %v", elapsed)
	}

	close(w.release)
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not finish after the consumer unstuck")
	}

	// The wire now holds: event 1, events 2-4 (buffered before the overflow),
	// a dropped marker for the gap, and nothing with a later id (the marker
	// deliberately carries none, keeping the client's Last-Event-ID at the
	// resume point).
	var events []StreamEvent
	var markers []map[string]uint64
	dec := NewSSEDecoder(strings.NewReader(w.contents()))
	for {
		ev, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type == EventDropped {
			if ev.ID != 0 {
				t.Errorf("dropped marker carries id %d, want none", ev.ID)
			}
			var m map[string]uint64
			if err := json.Unmarshal(ev.Data, &m); err != nil {
				t.Fatalf("marker payload %q: %v", ev.Data, err)
			}
			markers = append(markers, m)
			continue
		}
		events = append(events, ev)
	}
	if len(events) != 4 {
		t.Fatalf("delivered events = %+v, want exactly the 4 that fit (1 in flight + 3 buffered)", events)
	}
	if len(markers) == 0 {
		t.Fatal("no dropped marker on the wire despite a delivery gap")
	}
	lastDelivered := events[len(events)-1].ID
	m := markers[0]
	if m["resume_id"] != lastDelivered {
		t.Errorf("marker resume_id = %d, want last delivered ID %d", m["resume_id"], lastDelivered)
	}
	if m["dropped"] == 0 {
		t.Error("marker reports zero dropped events")
	}
	if s.streams.dropped.Load() == 0 {
		t.Error("hub drop counter never moved")
	}
}
