package service_test

// End-to-end tests for GET /v1/jobs/{id}/events: lifecycle ordering over a
// live stream, Last-Event-ID resume out of the retained log, the NDJSON
// fallback, and the admin/introspection surfaces the streaming layer feeds.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// watchOutcome carries a goroutine watch back to the test.
type watchOutcome struct {
	res    service.WatchResult
	events []service.StreamEvent
	err    error
}

// watchJob runs WatchJobDetail on its own goroutine, collecting every event.
func watchJob(ctx context.Context, c *service.Client, id string, afterID uint64) chan watchOutcome {
	done := make(chan watchOutcome, 1)
	go func() {
		var out watchOutcome
		out.res, out.err = c.WatchJobDetail(ctx, id, afterID, func(ev service.StreamEvent) {
			out.events = append(out.events, ev)
		})
		done <- out
	}()
	return done
}

// stateOf unmarshals a state event's payload.
func stateOf(t *testing.T, ev service.StreamEvent) service.JobStatus {
	t.Helper()
	if ev.Type != service.EventState {
		t.Fatalf("event %d is %q, want %q", ev.ID, ev.Type, service.EventState)
	}
	var js service.JobStatus
	if err := json.Unmarshal(ev.Data, &js); err != nil {
		t.Fatalf("unmarshal state event %d: %v", ev.ID, err)
	}
	return js
}

// TestJobEventsLifecycleOrder watches a job live from before it runs and
// asserts the push side's core contract: lifecycle events arrive in order
// (queued, running, done) with 1-based contiguous IDs, and the stream closes
// itself after the terminal event.
func TestJobEventsLifecycleOrder(t *testing.T) {
	started, release := resetBlock()
	_, c := newServer(t, service.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	js, err := c.Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 31, Runs: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	done := watchJob(ctx, c, js.ID, 0)
	<-started
	close(release)
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Status.State != service.StateDone {
		t.Fatalf("terminal status = %s (%s), want done", out.res.Status.State, out.res.Status.Error)
	}
	if out.res.Reconnects != 0 || out.res.Drops != 0 {
		t.Errorf("clean watch saw %d reconnects, %d drops; want 0, 0", out.res.Reconnects, out.res.Drops)
	}

	var states []service.State
	for i, ev := range out.events {
		if want := uint64(i + 1); ev.ID != want {
			t.Errorf("event %d has ID %d, want contiguous %d", i, ev.ID, want)
		}
		if ev.Type == service.EventState {
			states = append(states, stateOf(t, ev).State)
		}
	}
	want := []service.State{service.StateQueued, service.StateRunning, service.StateDone}
	if len(states) != len(want) {
		t.Fatalf("lifecycle states = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("lifecycle states = %v, want %v", states, want)
		}
	}
}

// completedJob pushes one job to done and returns its status.
func completedJob(t *testing.T, c *service.Client, seed int64) service.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	js, err := c.Submit(ctx, service.SubmitRequest{Experiment: "fig7", Seed: seed, Runs: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if js, err = c.Wait(ctx, js.ID, 5*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	if js.State != service.StateDone {
		t.Fatalf("job = %s (%s), want done", js.State, js.Error)
	}
	return js
}

// TestJobEventsResume replays a finished job's stream from Last-Event-ID: a
// reconnect after event K receives exactly the retained events with greater
// IDs and then ends, because the stream is closed.
func TestJobEventsResume(t *testing.T) {
	_, c := newServer(t, service.Config{})
	js := completedJob(t, c, 41)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Full replay establishes how many events the stream holds.
	full, err := c.WatchJobDetail(ctx, js.ID, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Events < 2 || full.LastEventID < 2 {
		t.Fatalf("full replay saw %d events up to ID %d, want at least the queued/done pair", full.Events, full.LastEventID)
	}

	// Resuming after event 1 replays IDs 2..last and nothing else.
	out := <-watchJob(ctx, c, js.ID, 1)
	if out.err != nil {
		t.Fatal(out.err)
	}
	if len(out.events) != full.Events-1 {
		t.Errorf("resume after 1 replayed %d events, want %d", len(out.events), full.Events-1)
	}
	if len(out.events) > 0 && out.events[0].ID != 2 {
		t.Errorf("resume after 1 started at ID %d, want 2", out.events[0].ID)
	}
	if out.res.Status.State != service.StateDone {
		t.Errorf("resumed terminal status = %s, want done", out.res.Status.State)
	}
}

// rawStream issues a bare HTTP stream request and returns the response.
func rawStream(t *testing.T, base, path, accept, lastEventID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestJobEventsWireFormats pins the negotiated content types on the wire:
// default SSE framing, and one JSON object per line under the NDJSON
// fallback — with identical events either way.
func TestJobEventsWireFormats(t *testing.T) {
	_, c := newServer(t, service.Config{})
	js := completedJob(t, c, 43)
	path := "/v1/jobs/" + js.ID + "/events"

	sse := rawStream(t, c.BaseURL, path, "text/event-stream", "")
	if ct := sse.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE Content-Type = %q", ct)
	}
	var sseEvents []service.StreamEvent
	dec := service.NewSSEDecoder(sse.Body)
	for {
		ev, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sseEvents = append(sseEvents, ev)
	}

	nd := rawStream(t, c.BaseURL, path, "application/x-ndjson", "")
	if ct := nd.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("NDJSON Content-Type = %q", ct)
	}
	var ndEvents []service.StreamEvent
	sc := bufio.NewScanner(nd.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev service.StreamEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("NDJSON line %q: %v", line, err)
		}
		ndEvents = append(ndEvents, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(sseEvents) == 0 || len(sseEvents) != len(ndEvents) {
		t.Fatalf("SSE replayed %d events, NDJSON %d; want equal and nonzero", len(sseEvents), len(ndEvents))
	}
	for i := range sseEvents {
		if sseEvents[i].ID != ndEvents[i].ID || sseEvents[i].Type != ndEvents[i].Type ||
			string(sseEvents[i].Data) != string(ndEvents[i].Data) {
			t.Errorf("event %d differs across formats: SSE %+v, NDJSON %+v", i, sseEvents[i], ndEvents[i])
		}
	}
}

func TestJobEventsUnknownJob(t *testing.T) {
	_, c := newServer(t, service.Config{})
	resp := rawStream(t, c.BaseURL, "/v1/jobs/nope/events", "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("events for unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestAdminStateAndStreamStatus checks the introspection the streaming layer
// feeds: a live subscriber shows up in /v1/admin/state and the /statusz
// stream counters, and both drain back down when the watch ends.
func TestAdminStateAndStreamStatus(t *testing.T) {
	started, release := resetBlock()
	s, c := newServer(t, service.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	js, err := c.Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 47, Runs: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	done := watchJob(ctx, c, js.ID, 0)
	<-started

	// The subscriber registers asynchronously with the watch goroutine; poll
	// the admin snapshot until it appears.
	deadline := time.Now().Add(10 * time.Second)
	var st service.AdminState
	for {
		if st, err = c.Admin(ctx); err != nil {
			t.Fatal(err)
		}
		if len(st.Subscribers) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if len(st.Subscribers) != 1 || st.Subscribers[0].Stream != js.ID {
		t.Fatalf("admin subscribers = %+v, want one on %s", st.Subscribers, js.ID)
	}
	if s.Status().Streams.Subscribers != 1 {
		t.Errorf("statusz subscribers = %d, want 1", s.Status().Streams.Subscribers)
	}

	close(release)
	if out := <-done; out.err != nil {
		t.Fatal(out.err)
	}
	// The handler deregisters on its way out, concurrently with the watch
	// returning.
	for time.Now().Before(deadline) && s.Status().Streams.Subscribers > 0 {
		time.Sleep(2 * time.Millisecond)
	}
	str := s.Status().Streams
	if str.Subscribers != 0 || str.Opened < 1 || str.Published < 3 {
		t.Errorf("post-watch stream status = %+v, want drained subscribers with history", str)
	}
}
