package service_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/store"
)

// The scheduler tests steer worker timing through registered test
// experiments: test-block parks inside the driver until released (or its
// Options.Context is cancelled), test-fail errors, test-panic panics, and
// test-flaky fails until its failure budget runs out.
var (
	blockMu        sync.Mutex
	blockStarted   chan int64
	blockRelease   chan struct{}
	flakyRemaining atomic.Int32
)

func init() {
	experiments.Register("test-block", "blocks until released (test)", func(o experiments.Options) (*experiments.Result, error) {
		blockMu.Lock()
		started, release := blockStarted, blockRelease
		blockMu.Unlock()
		if started != nil {
			started <- o.Seed
		}
		if release != nil {
			ctx := o.Context
			if ctx == nil {
				ctx = context.Background()
			}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		tb := report.NewTable("block", "seed")
		tb.AddRow(fmt.Sprint(o.Seed))
		return &experiments.Result{ID: "test-block", Title: "test", Tables: []*report.Table{tb}}, nil
	})
	experiments.Register("test-fail", "always fails (test)", func(o experiments.Options) (*experiments.Result, error) {
		return nil, errors.New("deliberate failure")
	})
	experiments.Register("test-panic", "always panics (test)", func(o experiments.Options) (*experiments.Result, error) {
		panic("deliberate panic")
	})
	experiments.Register("test-flaky", "fails until the budget is spent (test)", func(o experiments.Options) (*experiments.Result, error) {
		if flakyRemaining.Add(-1) >= 0 {
			return nil, errors.New("transient failure")
		}
		tb := report.NewTable("flaky", "seed")
		tb.AddRow(fmt.Sprint(o.Seed))
		return &experiments.Result{ID: "test-flaky", Title: "test", Tables: []*report.Table{tb}}, nil
	})
}

// resetBlock re-arms the test-block experiment and returns its start-signal
// and release channels.
func resetBlock() (chan int64, chan struct{}) {
	blockMu.Lock()
	defer blockMu.Unlock()
	blockStarted = make(chan int64, 16)
	blockRelease = make(chan struct{})
	return blockStarted, blockRelease
}

// testSched wraps a scheduler with a channel fed by Config.StateHook, so
// tests synchronize on real lifecycle transitions instead of polling the
// wall clock.
type testSched struct {
	*service.Scheduler
	events chan service.JobStatus
	// seen holds terminal states drained from events while waiting for a
	// different job.
	seen map[string]service.JobStatus
}

func newSched(t *testing.T, cfg service.Config) *testSched {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	if cfg.Fingerprint == "" {
		cfg.Fingerprint = "test-fp"
	}
	ts := &testSched{
		events: make(chan service.JobStatus, 1024),
		seen:   map[string]service.JobStatus{},
	}
	if cfg.StateHook == nil {
		cfg.StateHook = func(js service.JobStatus) { ts.events <- js }
	}
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts.Scheduler = s
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return ts
}

func terminal(st service.State) bool {
	return st == service.StateDone || st == service.StateFailed
}

// waitJob blocks on lifecycle events until the job reaches a terminal
// state. The timer is a failure deadline, not a poll interval.
func waitJob(t *testing.T, s *testSched, id string) service.JobStatus {
	t.Helper()
	if js, ok := s.seen[id]; ok {
		return js
	}
	deadline := time.After(30 * time.Second)
	for {
		select {
		case js := <-s.events:
			if !terminal(js.State) {
				continue
			}
			if js.ID == id {
				return js
			}
			s.seen[js.ID] = js
		case <-deadline:
			t.Fatalf("job %s did not finish", id)
		}
	}
}

func submit(t *testing.T, s *testSched, exp string, seed int64) service.JobStatus {
	t.Helper()
	js, err := s.Submit(service.Request{
		Experiment: exp,
		Options:    experiments.Options{Seed: seed, Runs: 1, Quick: true}.Key(),
	})
	if err != nil {
		t.Fatalf("submit %s seed %d: %v", exp, seed, err)
	}
	return js
}

func TestSubmitUnknownExperiment(t *testing.T) {
	s := newSched(t, service.Config{})
	_, err := s.Submit(service.Request{Experiment: "nope"})
	if !errors.Is(err, service.ErrUnknownExperiment) {
		t.Errorf("Submit(nope) error = %v, want ErrUnknownExperiment", err)
	}
}

func TestCacheHitOnResubmit(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newSched(t, service.Config{Store: st, CollectMetrics: true})

	first := submit(t, s, "fig7", 1)
	if first.Cached {
		t.Error("first submission reported cached")
	}
	done := waitJob(t, s, first.ID)
	if done.State != service.StateDone {
		t.Fatalf("first job state = %s (%s)", done.State, done.Error)
	}
	if done.ResultKey != first.CacheKey {
		t.Errorf("result key %s != cache key %s", done.ResultKey, first.CacheKey)
	}
	if done.Attempt != 1 {
		t.Errorf("computed job attempt = %d, want 1", done.Attempt)
	}
	e1, ok, err := st.Get(done.ResultKey)
	if err != nil || !ok {
		t.Fatalf("result not in store: (%v, %v)", ok, err)
	}
	if e1.Tables == "" || e1.Bench == nil {
		t.Errorf("entry missing tables or bench record: %+v", e1)
	}
	if len(e1.Metrics) == 0 {
		t.Error("CollectMetrics on, but entry has no metrics JSON")
	}

	// Identical resubmission: done at admission, no re-simulation, tables
	// byte-identical (it is the same content-addressed entry).
	second := submit(t, s, "fig7", 1)
	if second.State != service.StateDone || !second.Cached {
		t.Fatalf("resubmission = state %s cached %v, want immediate cached done", second.State, second.Cached)
	}
	e2, ok, err := st.Get(second.ResultKey)
	if err != nil || !ok {
		t.Fatal("cached result missing")
	}
	if e1.Tables != e2.Tables {
		t.Error("cached tables differ from original run")
	}

	var b strings.Builder
	if err := s.WriteMetricsText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"qsm_service_cache_hits_total 1",
		"qsm_service_cache_misses_total 1",
		"qsm_service_jobs_submitted_total 2",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("metrics dump missing %q:\n%s", want, b.String())
		}
	}
}

func TestQueueFullRejection(t *testing.T) {
	started, release := resetBlock()
	s := newSched(t, service.Config{Workers: 1, QueueCap: 1})

	a := submit(t, s, "test-block", 1)
	<-started // the worker now holds job A open; the queue is empty
	b := submit(t, s, "test-block", 2)

	_, err := s.Submit(service.Request{
		Experiment: "test-block",
		Options:    experiments.Options{Seed: 3, Runs: 1, Quick: true}.Key(),
	})
	var full *service.QueueFullError
	if !errors.As(err, &full) {
		t.Fatalf("over-capacity submit error = %v, want QueueFullError", err)
	}
	if full.Capacity != 1 {
		t.Errorf("QueueFullError.Capacity = %d, want 1", full.Capacity)
	}

	close(release)
	if js := waitJob(t, s, a.ID); js.State != service.StateDone {
		t.Errorf("job A state = %s (%s)", js.State, js.Error)
	}
	if js := waitJob(t, s, b.ID); js.State != service.StateDone {
		t.Errorf("job B state = %s (%s)", js.State, js.Error)
	}
}

func TestConcurrentIdenticalSubmissionsRunOnce(t *testing.T) {
	started, release := resetBlock()
	s := newSched(t, service.Config{Workers: 2, QueueCap: 8})

	a := submit(t, s, "test-block", 5)
	b := submit(t, s, "test-block", 5)
	<-started // exactly one simulation starts...
	select {  // ...and the duplicate shares it instead of starting its own
	case seed := <-started:
		t.Fatalf("duplicate submission started its own simulation (seed %d)", seed)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)

	ja, jb := waitJob(t, s, a.ID), waitJob(t, s, b.ID)
	if ja.State != service.StateDone || jb.State != service.StateDone {
		t.Fatalf("states = %s/%s (%s/%s)", ja.State, jb.State, ja.Error, jb.Error)
	}
	if ja.Cached == jb.Cached {
		t.Errorf("exactly one of the two identical jobs should compute: cached = %v/%v", ja.Cached, jb.Cached)
	}
	if ja.ResultKey != jb.ResultKey {
		t.Errorf("identical jobs landed on different results: %s vs %s", ja.ResultKey, jb.ResultKey)
	}
}

func TestJobFailure(t *testing.T) {
	s := newSched(t, service.Config{})
	js := waitJob(t, s, submit(t, s, "test-fail", 1).ID)
	if js.State != service.StateFailed || !strings.Contains(js.Error, "deliberate failure") {
		t.Errorf("job = %s %q, want failed with the driver's error", js.State, js.Error)
	}
	if js.Attempt != 1 {
		t.Errorf("attempt = %d, want 1 (no retry budget configured)", js.Attempt)
	}
}

func TestPanicIsolation(t *testing.T) {
	s := newSched(t, service.Config{Workers: 1})
	js := waitJob(t, s, submit(t, s, "test-panic", 1).ID)
	if js.State != service.StateFailed || !strings.Contains(js.Error, "panicked") {
		t.Errorf("job = %s %q, want failed with a panic report", js.State, js.Error)
	}
	// The worker survived; the scheduler still serves.
	if js := waitJob(t, s, submit(t, s, "fig7", 1).ID); js.State != service.StateDone {
		t.Errorf("post-panic job state = %s (%s)", js.State, js.Error)
	}
}

func TestJobRetrySucceeds(t *testing.T) {
	flakyRemaining.Store(2) // first two attempts fail
	s := newSched(t, service.Config{Workers: 1, JobRetries: 3})
	js := waitJob(t, s, submit(t, s, "test-flaky", 1).ID)
	if js.State != service.StateDone {
		t.Fatalf("flaky job = %s (%s), want done after retries", js.State, js.Error)
	}
	if js.Attempt != 3 {
		t.Errorf("attempt = %d, want 3 (two failures, then success)", js.Attempt)
	}
	var b strings.Builder
	if err := s.WriteMetricsText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "qsm_service_jobs_retried_total 2") {
		t.Errorf("metrics missing retry count:\n%s", b.String())
	}
}

func TestJobRetryBudgetExhausted(t *testing.T) {
	flakyRemaining.Store(100)
	s := newSched(t, service.Config{Workers: 1, JobRetries: 2})
	js := waitJob(t, s, submit(t, s, "test-flaky", 2).ID)
	if js.State != service.StateFailed || !strings.Contains(js.Error, "transient failure") {
		t.Errorf("job = %s %q, want failed with the driver's error", js.State, js.Error)
	}
	if js.Attempt != 3 {
		t.Errorf("attempt = %d, want 3 (initial + 2 retries)", js.Attempt)
	}
}

func TestJobTimeoutRetries(t *testing.T) {
	started, release := resetBlock()
	s := newSched(t, service.Config{
		Workers:    1,
		JobTimeout: 50 * time.Millisecond,
		JobRetries: 1,
	})
	js := submit(t, s, "test-block", 7)
	<-started // attempt 1 blocks until its per-attempt deadline cancels it
	<-started // attempt 2 started: the timeout was converted into a retry
	close(release)
	done := waitJob(t, s, js.ID)
	if done.State != service.StateDone {
		t.Fatalf("job = %s (%s), want done on the retry", done.State, done.Error)
	}
	if done.Attempt != 2 {
		t.Errorf("attempt = %d, want 2", done.Attempt)
	}
}

func TestJobTimeoutExhaustsRetries(t *testing.T) {
	started, _ := resetBlock() // nothing ever releases the block
	s := newSched(t, service.Config{
		Workers:    1,
		JobTimeout: 30 * time.Millisecond,
		JobRetries: 1,
	})
	js := submit(t, s, "test-block", 8)
	<-started
	<-started
	done := waitJob(t, s, js.ID)
	if done.State != service.StateFailed || !strings.Contains(done.Error, context.DeadlineExceeded.Error()) {
		t.Errorf("job = %s %q, want failed with the attempt deadline", done.State, done.Error)
	}
	if done.Attempt != 2 {
		t.Errorf("attempt = %d, want 2", done.Attempt)
	}
}

func TestInjectedPanicIsRetried(t *testing.T) {
	inj := faults.New(faults.Config{
		Seed:  1,
		Rules: map[faults.Class]faults.Rule{faults.WorkerPanic: {Every: 1, Max: 1}},
	})
	s := newSched(t, service.Config{Workers: 1, JobRetries: 1, Faults: inj})
	js := waitJob(t, s, submit(t, s, "fig7", 3).ID)
	if js.State != service.StateDone {
		t.Fatalf("job = %s (%s), want done after the injected panic", js.State, js.Error)
	}
	if js.Attempt != 2 {
		t.Errorf("attempt = %d, want 2 (panic on the first)", js.Attempt)
	}
	if n := inj.Count(faults.WorkerPanic); n != 1 {
		t.Errorf("injected panics = %d, want 1", n)
	}
	// The injector's fire counters ride along on the scheduler's metrics
	// dump (what /metricsz serves).
	var b strings.Builder
	if err := s.WriteMetricsText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `qsm_faults_injected_total{class="worker_panic"} 1`) {
		t.Errorf("metrics dump missing injector counters:\n%s", b.String())
	}
}

func TestInjectedSlowJobHitsTimeout(t *testing.T) {
	inj := faults.New(faults.Config{
		Seed: 1,
		Rules: map[faults.Class]faults.Rule{
			faults.SlowJob: {Every: 1, Max: 1, Delay: 10 * time.Second},
		},
	})
	flakyRemaining.Store(0) // test-flaky succeeds instantly once the delay is gone
	s := newSched(t, service.Config{
		Workers:    1,
		JobTimeout: 50 * time.Millisecond,
		JobRetries: 1,
		Faults:     inj,
	})
	js := waitJob(t, s, submit(t, s, "test-flaky", 4).ID)
	if js.State != service.StateDone {
		t.Fatalf("job = %s (%s), want done once the slow-job budget is spent", js.State, js.Error)
	}
	if js.Attempt != 2 {
		t.Errorf("attempt = %d, want 2 (first attempt injected slow, timed out)", js.Attempt)
	}
	if n := inj.Count(faults.SlowJob); n != 1 {
		t.Errorf("injected slowdowns = %d, want 1", n)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	started, release := resetBlock()
	s := newSched(t, service.Config{Workers: 1, QueueCap: 4})

	a := submit(t, s, "test-block", 1)
	<-started
	b := submit(t, s, "test-block", 2)
	if !s.Cancel(b.ID) {
		t.Fatal("Cancel reported job B unknown")
	}
	close(release)

	if js := waitJob(t, s, a.ID); js.State != service.StateDone {
		t.Errorf("job A state = %s (%s)", js.State, js.Error)
	}
	js := waitJob(t, s, b.ID)
	if js.State != service.StateFailed || !strings.Contains(js.Error, context.Canceled.Error()) {
		t.Errorf("cancelled job = %s %q, want failed with context.Canceled", js.State, js.Error)
	}
}

func TestCancelledJobIsNotRetried(t *testing.T) {
	started, release := resetBlock()
	s := newSched(t, service.Config{Workers: 1, JobRetries: 5})
	js := submit(t, s, "test-block", 9)
	<-started
	if !s.Cancel(js.ID) {
		t.Fatal("Cancel reported the job unknown")
	}
	close(release)
	done := waitJob(t, s, js.ID)
	if done.State != service.StateFailed {
		t.Fatalf("cancelled job = %s, want failed", done.State)
	}
	if done.Attempt != 1 {
		t.Errorf("attempt = %d, want 1 (cancellation must not consume the retry budget)", done.Attempt)
	}
}

func TestDrain(t *testing.T) {
	started, release := resetBlock()
	s := newSched(t, service.Config{Workers: 1})
	a := submit(t, s, "test-block", 1)
	<-started

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	<-s.DrainBegun()
	if _, err := s.Submit(service.Request{
		Experiment: "test-block",
		Options:    experiments.Options{Seed: 9, Runs: 1, Quick: true}.Key(),
	}); !errors.Is(err, service.ErrDraining) {
		t.Errorf("submit during drain = %v, want ErrDraining", err)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Errorf("Drain = %v, want nil (in-flight job finished)", err)
	}
	if js, _ := s.Job(a.ID); js.State != service.StateDone {
		t.Errorf("in-flight job after drain = %s (%s), want done", js.State, js.Error)
	}
}

func TestDrainDeadlineCancelsJobs(t *testing.T) {
	started, _ := resetBlock()
	s := newSched(t, service.Config{Workers: 1})
	a := submit(t, s, "test-block", 1)
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// Nothing ever releases the block; the deadline must cancel the job
	// through its context and still unwind the pool.
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Drain = %v, want DeadlineExceeded", err)
	}
	if js, _ := s.Job(a.ID); js.State != service.StateFailed {
		t.Errorf("job after forced drain = %s, want failed", js.State)
	}
}
