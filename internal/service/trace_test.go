package service_test

// Tests for the wall-clock observability path: trace-ID propagation from
// the client through retries, the HTTP trace middleware, and the
// end-to-end merged trace a faults-armed server exports for one job.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

// TestClientRetryKeepsTraceID checks the retry contract: every attempt of a
// retried request carries the same X-Qsm-Trace header, and each attempt gets
// its own client-layer span under that one trace ID.
func TestClientRetryKeepsTraceID(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	srv, n := scriptedServer(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get(obs.TraceHeader))
		mu.Unlock()
		if n < 3 {
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"id":"job-1","state":"done"}`))
	})
	c := retryClient(srv, 5)
	c.TraceID = "feedfacefeedface"
	c.Tracer = obs.NewWallTracer(0)

	if _, err := c.Job(context.Background(), "job-1"); err != nil {
		t.Fatalf("retried request failed: %v", err)
	}
	if n.Load() != 3 {
		t.Fatalf("server saw %d attempts, want 3", n.Load())
	}
	mu.Lock()
	defer mu.Unlock()
	for i, id := range seen {
		if id != "feedfacefeedface" {
			t.Errorf("attempt %d sent trace ID %q, want feedfacefeedface", i+1, id)
		}
	}
	if got := c.Tracer.SpansFor("feedfacefeedface"); got != 3 {
		t.Errorf("client recorded %d spans, want 3 (one per attempt)", got)
	}
}

// TestTraceMiddlewareAdoptsAndMints checks header handling: a valid inbound
// X-Qsm-Trace is adopted and echoed; a missing or invalid one is replaced
// with a freshly minted valid ID.
func TestTraceMiddlewareAdoptsAndMints(t *testing.T) {
	tracer := obs.NewWallTracer(0)
	s := newSched(t, service.Config{Tracer: tracer})
	srv := httptest.NewServer(s.TraceMiddleware(s.Handler()))
	t.Cleanup(srv.Close)

	for _, tc := range []struct {
		inbound string
		adopt   bool
	}{
		{"abcdef0123456789", true},
		{"", false},
		{"NOT-A-TRACE-ID", false},
	} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
		if tc.inbound != "" {
			req.Header.Set(obs.TraceHeader, tc.inbound)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		echo := resp.Header.Get(obs.TraceHeader)
		if !obs.ValidTraceID(echo) {
			t.Errorf("inbound %q: response trace ID %q is invalid", tc.inbound, echo)
		}
		if tc.adopt && echo != tc.inbound {
			t.Errorf("inbound %q: not adopted, got %q", tc.inbound, echo)
		}
		if !tc.adopt && echo == tc.inbound {
			t.Errorf("inbound invalid ID %q was adopted", tc.inbound)
		}
	}
	if tracer.Spans() == 0 {
		t.Error("middleware recorded no request spans")
	}
}

// TestEndToEndMergedTrace is the acceptance-criteria test: one job submitted
// through service.Client against a faults-armed, tracing server produces a
// single merged trace holding wall-clock spans for every serving layer
// (client, http, queue, scheduler, store, runner) plus the job's sim-time
// process rows, all under one trace ID — and that trace ID appears on the
// job's structured log lines, including a fault-annotated one.
func TestEndToEndMergedTrace(t *testing.T) {
	inj, err := faults.FromSpec(1, "slow_job:1:1:1ms,store_read:2:2")
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	logger := obs.NewLogger(&lockedWriter{w: &logBuf, mu: &logMu}, obs.ParseLogLevel("debug"))
	tracer := obs.NewWallTracer(0)
	st, err := store.OpenConfig(store.Config{Dir: t.TempDir(), Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	s := newSched(t, service.Config{
		Store:          st,
		Workers:        1,
		CollectMetrics: true,
		CollectTrace:   true,
		Faults:         inj,
		Log:            logger,
		Tracer:         tracer,
	})
	srv := httptest.NewServer(s.TraceMiddleware(faults.Middleware(inj, s.Handler())))
	t.Cleanup(srv.Close)

	// The client shares the server's tracer so its per-attempt spans land in
	// the same buffer, as qsmtop-style colocated tooling would.
	c := &service.Client{
		BaseURL: srv.URL,
		HTTP:    srv.Client(),
		TraceID: obs.NewTraceID(),
		Tracer:  tracer,
		Retry:   service.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, Seed: 1},
	}
	js, err := c.Submit(context.Background(), service.SubmitRequest{Experiment: "fig2", Seed: 1, Runs: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if js.TraceID != c.TraceID {
		t.Errorf("job trace ID %q, want the client's %q", js.TraceID, c.TraceID)
	}
	js = waitJob(t, s, js.ID)
	if js.State != service.StateDone {
		t.Fatalf("job state %s (%s), want done", js.State, js.Error)
	}

	var trace bytes.Buffer
	ok, err := s.WriteJobTrace(&trace, js.ID)
	if !ok || err != nil {
		t.Fatalf("WriteJobTrace: ok=%v err=%v", ok, err)
	}
	var doc struct {
		OtherData struct {
			TraceID string `json:"traceId"`
		} `json:"otherData"`
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	if doc.OtherData.TraceID != c.TraceID {
		t.Errorf("trace document ID %q, want %q", doc.OtherData.TraceID, c.TraceID)
	}
	layers := map[string]bool{}
	simSpans := 0
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Pid == 1 && ev.Name == "thread_name":
			layers[ev.Args["name"].(string)] = true
		case (ev.Ph == "X" || ev.Ph == "i") && ev.Pid == 1:
			if id, _ := ev.Args["trace_id"].(string); id != c.TraceID {
				t.Errorf("wall event %q carries trace_id %v, want %q", ev.Name, ev.Args["trace_id"], c.TraceID)
			}
		case ev.Ph == "X" && ev.Pid > 1:
			simSpans++
		}
	}
	for _, want := range []string{"client", "http", "queue", "scheduler", "store", "runner"} {
		if !layers[want] {
			t.Errorf("merged trace missing wall layer %q (got %v)", want, layers)
		}
	}
	if simSpans == 0 {
		t.Error("merged trace has no sim-time spans")
	}

	logMu.Lock()
	logs := logBuf.String()
	logMu.Unlock()
	idTag := "trace_id=" + c.TraceID
	var jobLines, faultWithID int
	for _, line := range strings.Split(logs, "\n") {
		if !strings.Contains(line, "job="+js.ID) {
			continue
		}
		jobLines++
		if !strings.Contains(line, idTag) {
			t.Errorf("job log line missing %s: %s", idTag, line)
		}
		if strings.Contains(line, "fault=") {
			faultWithID++
		}
	}
	if jobLines == 0 {
		t.Error("no structured log lines for the job")
	}
	if faultWithID == 0 {
		t.Errorf("no log line carries both the trace ID and a fault annotation:\n%s", logs)
	}
}

// TestStatuszSnapshot checks the introspection payload over HTTP: queue
// capacity, per-state job counts, store stats, and fault armament reflect a
// job that just ran.
func TestStatuszSnapshot(t *testing.T) {
	inj, err := faults.FromSpec(1, "slow_job:1:1:1ms")
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenConfig(store.Config{Dir: t.TempDir(), Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	s := newSched(t, service.Config{
		Store: st, Workers: 1, QueueCap: 9,
		CollectMetrics: true, Faults: inj, Tracer: obs.NewWallTracer(0),
	})
	srv := httptest.NewServer(s.TraceMiddleware(s.Handler()))
	t.Cleanup(srv.Close)

	_, release := resetBlock()
	close(release) // job passes straight through the block
	js := submit(t, s, "test-block", 1)
	js = waitJob(t, s, js.ID)
	if js.State != service.StateDone {
		t.Fatalf("job state %s, want done", js.State)
	}

	resp, err := srv.Client().Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status service.Status
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Queue.Capacity != 9 {
		t.Errorf("queue capacity %d, want 9", status.Queue.Capacity)
	}
	if status.Jobs.Done != 1 || status.Jobs.Total != 1 {
		t.Errorf("job counts %+v, want 1 done of 1", status.Jobs)
	}
	if status.Scheduler.Submitted != 1 {
		t.Errorf("submitted %d, want 1", status.Scheduler.Submitted)
	}
	if !status.TraceEnabled || status.WallSpans == 0 {
		t.Errorf("trace status %v/%d, want enabled with spans", status.TraceEnabled, status.WallSpans)
	}
	if !status.Faults.Armed {
		t.Error("fault injector not reported armed")
	}
	if status.UptimeSeconds <= 0 {
		t.Errorf("uptime %v, want > 0", status.UptimeSeconds)
	}
}

// lockedWriter serialises concurrent log writes from scheduler goroutines.
type lockedWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
