package service

// Batch submission: POST /v1/jobs:batch admits up to maxBatchJobs jobs in
// one request with per-item outcomes (one tenant's quota rejection does not
// fail its siblings) and creates one aggregate event stream — every member
// job's events re-sequenced into a single log served on
// GET /v1/batches/{id}/events, closed by an EventBatch summary once the
// last member reaches a terminal state. Identical submissions inside one
// batch coalesce exactly like identical submissions across requests: the
// queue batches them behind one simulation.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// batchStream aggregates the member jobs of one batch submission into a
// single stream with its own event numbering, tracking how many members
// have reached a terminal state so it can emit the closing summary.
type batchStream struct {
	id  string
	log *eventLog

	mu         sync.Mutex
	total      int // members still expected to produce a terminal event
	terminal   int
	failed     int
	summarized bool
}

// forward re-sequences one member event into the aggregate log and, when it
// is the member's terminal event, advances the completion count.
func (b *batchStream) forward(typ string, data []byte, memberTerminal, memberFailed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.log.publish(typ, data, false, false)
	if memberTerminal {
		b.terminal++
		if memberFailed {
			b.failed++
		}
	}
	b.maybeFinishLocked()
}

// skip removes one expected member (a rejected batch item that will never
// produce events).
func (b *batchStream) skip() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.total--
	b.maybeFinishLocked()
}

func (b *batchStream) maybeFinishLocked() {
	if b.summarized || b.terminal < b.total {
		return
	}
	b.summarized = true
	data, _ := json.Marshal(map[string]any{
		"batch":  b.id,
		"total":  b.total,
		"done":   b.terminal - b.failed,
		"failed": b.failed,
	})
	b.log.publish(EventBatch, data, true, b.failed > 0)
}

// BatchInfo is one batch's row in the admin state.
type BatchInfo struct {
	ID       string `json:"id"`
	Total    int    `json:"total"`
	Terminal int    `json:"terminal"`
	Failed   int    `json:"failed"`
	Closed   bool   `json:"closed"`
}

func (b *batchStream) info() BatchInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BatchInfo{ID: b.id, Total: b.total, Terminal: b.terminal, Failed: b.failed, Closed: b.summarized}
}

// BatchItem is one submission's outcome inside a batch: either an admitted
// (possibly already-done) job or a per-item error with its HTTP-shaped
// status code.
type BatchItem struct {
	Job   *JobStatus `json:"job,omitempty"`
	Error string     `json:"error,omitempty"`
	Code  int        `json:"code,omitempty"`
}

// BatchStatus is the POST /v1/jobs:batch response: the batch's ID, its
// aggregate stream path, and per-item outcomes in submission order.
type BatchStatus struct {
	ID string `json:"id"`
	// EventsPath is where the aggregate stream is served.
	EventsPath string      `json:"events_path"`
	Accepted   int         `json:"accepted"`
	Rejected   int         `json:"rejected"`
	Jobs       []BatchItem `json:"jobs"`
}

// ErrBatchEmpty rejects a batch naming no jobs.
var ErrBatchEmpty = errors.New("service: batch names no jobs")

// ErrBatchTooLarge rejects a batch over maxBatchJobs items.
var ErrBatchTooLarge = fmt.Errorf("service: batch exceeds %d jobs", maxBatchJobs)

// SubmitBatch admits every request as its own job (sharing one aggregate
// stream) and reports per-item outcomes. The batch as a whole only fails on
// malformed shape (empty or oversized); individual rejections — unknown
// experiment, quota, queue full — land in their item.
func (s *Scheduler) SubmitBatch(ctx context.Context, reqs []Request) (BatchStatus, error) {
	if len(reqs) == 0 {
		return BatchStatus{}, ErrBatchEmpty
	}
	if len(reqs) > maxBatchJobs {
		return BatchStatus{}, ErrBatchTooLarge
	}
	b := s.newBatch(len(reqs))
	out := BatchStatus{ID: b.id, EventsPath: "/v1/batches/" + b.id + "/events"}
	for _, req := range reqs {
		js, err := s.SubmitCtx(ctx, req)
		if err != nil {
			b.skip()
			out.Rejected++
			out.Jobs = append(out.Jobs, BatchItem{Error: err.Error(), Code: submitErrorCode(err)})
			continue
		}
		out.Accepted++
		s.mu.Lock()
		j := s.jobs[js.ID]
		s.mu.Unlock()
		if j != nil {
			j.events.attach(b)
		}
		st := js
		out.Jobs = append(out.Jobs, BatchItem{Job: &st})
	}
	return out, nil
}

// newBatch registers a batch stream expecting total member terminals.
func (s *Scheduler) newBatch(total int) *batchStream {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextBatch++
	id := fmt.Sprintf("batch-%d", s.nextBatch)
	if s.cfg.NodeName != "" {
		id = fmt.Sprintf("batch-%s-%d", s.cfg.NodeName, s.nextBatch)
	}
	b := &batchStream{id: id, total: total}
	b.log = newEventLog(id, s.cfg.StreamLogCap, s.streams)
	s.batches[id] = b
	return b
}

// submitErrorCode maps a submission error to the HTTP status the plain
// submit endpoint would have returned, for per-item batch outcomes.
func submitErrorCode(err error) int {
	var quota *QuotaError
	var full *QueueFullError
	switch {
	case errors.Is(err, ErrUnknownExperiment):
		return http.StatusBadRequest
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.As(err, &quota), errors.As(err, &full):
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// BatchSubmitRequest is the POST /v1/jobs:batch body.
type BatchSubmitRequest struct {
	Jobs []SubmitRequest `json:"jobs"`
}

func (s *Scheduler) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.authTenant(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	var breq BatchSubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	reqs := make([]Request, 0, len(breq.Jobs))
	for _, item := range breq.Jobs {
		req := Request{
			Experiment: item.Experiment,
			Options:    item.Key(),
			Tenant:     item.Tenant,
			Priority:   item.Priority,
			Deadline:   time.Duration(item.DeadlineMS) * time.Millisecond,
		}
		if s.tenants.enabled() {
			req.Tenant = tenant
		}
		reqs = append(reqs, req)
	}
	bs, err := s.SubmitBatch(r.Context(), reqs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, bs)
}
