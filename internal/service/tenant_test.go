package service_test

// Multi-tenant admission tests: keyed-mode authentication, the concurrent
// and queued quota edges (429 + Retry-After), quota release on every
// terminal path (done, cancelled, failed), and the anonymous-mode guarantee
// that a service with no tenants configured behaves exactly as before.

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

// tenantServer brings up a keyed two-tenant server and a client
// authenticating as the first tenant.
func tenantServer(t *testing.T, spec string, cfg service.Config) (*service.Scheduler, *service.Client) {
	t.Helper()
	tens, err := service.ParseTenants(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tenants = tens
	return newServer(t, cfg)
}

// asTenant returns a fresh client for c's server sending the given API
// key. (A field-wise rebuild, not a struct copy — Client embeds a mutex.)
func asTenant(c *service.Client, key string) *service.Client {
	return &service.Client{
		BaseURL: c.BaseURL,
		HTTP:    c.HTTP,
		Headers: map[string]string{service.APIKeyHeader: key},
	}
}

func TestParseTenants(t *testing.T) {
	got, err := service.ParseTenants("alpha:ka:2:4, beta:kb ,gamma:kg:0")
	if err != nil {
		t.Fatal(err)
	}
	want := []service.TenantConfig{
		{Name: "alpha", Key: "ka", MaxActive: 2, MaxQueued: 4},
		{Name: "beta", Key: "kb"},
		{Name: "gamma", Key: "kg"},
	}
	if len(got) != len(want) {
		t.Fatalf("ParseTenants = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tenant %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"noname", "x:k:-1", "x:k:a", "x:k:1:b", "a:b:c:d:e"} {
		if _, err := service.ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted a bad spec", bad)
		}
	}
}

func TestTenantAuthRequired(t *testing.T) {
	_, c := tenantServer(t, "acme:key-acme:4:8", service.Config{})
	ctx := context.Background()
	req := service.SubmitRequest{Experiment: "fig7", Seed: 51, Runs: 1, Quick: true}

	if _, err := c.Submit(ctx, req); err == nil || !strings.Contains(err.Error(), "HTTP 401") {
		t.Errorf("keyless submit in keyed mode: err = %v, want HTTP 401", err)
	}
	if _, err := asTenant(c, "wrong").Submit(ctx, req); err == nil || !strings.Contains(err.Error(), "HTTP 401") {
		t.Errorf("wrong-key submit: err = %v, want HTTP 401", err)
	}
	js, err := asTenant(c, "key-acme").Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if js.Tenant != "acme" {
		t.Errorf("authenticated job tenant = %q, want acme (key overrides body)", js.Tenant)
	}
	// The events and admin endpoints gate on the same auth.
	for _, path := range []string{"/v1/jobs/" + js.ID + "/events", "/v1/admin/state"} {
		resp := rawStream(t, c.BaseURL, path, "", "")
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("keyless GET %s: HTTP %d, want 401", path, resp.StatusCode)
		}
	}
}

// TestTenantBearerToken: the Authorization: Bearer form of the key works
// identically to the header form.
func TestTenantBearerToken(t *testing.T) {
	_, c := tenantServer(t, "acme:key-acme:4:8", service.Config{})
	cc := &service.Client{
		BaseURL: c.BaseURL,
		HTTP:    c.HTTP,
		Headers: map[string]string{"Authorization": "Bearer key-acme"},
	}
	js, err := cc.Submit(context.Background(), service.SubmitRequest{Experiment: "fig7", Seed: 52, Runs: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if js.Tenant != "acme" {
		t.Errorf("bearer-authenticated job tenant = %q, want acme", js.Tenant)
	}
}

// submitRaw posts a submission with an API key and returns the raw
// response, for header-level assertions the typed client hides.
func submitRaw(t *testing.T, base, key, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.APIKeyHeader, key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestTenantConcurrentQuota: a tenant at its MaxActive limit gets 429 with a
// Retry-After header; a sibling tenant is unaffected; finishing a job frees
// the slot.
func TestTenantConcurrentQuota(t *testing.T) {
	started, release := resetBlock()
	_, c := tenantServer(t, "acme:key-acme:1:8,globex:key-globex:4:8", service.Config{Workers: 2})
	ctx := context.Background()
	acme := asTenant(c, "key-acme")

	if _, err := acme.Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 61, Runs: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
	<-started

	// At the limit: the raw response must be 429 with a parseable
	// Retry-After.
	resp := submitRaw(t, c.BaseURL, "key-acme",
		`{"experiment":"test-block","seed":62,"runs":1,"quick":true}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("over-quota response Retry-After = %q, want a positive integer", ra)
	}

	// Another tenant's quota is untouched.
	if _, err := asTenant(c, "key-globex").Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 63, Runs: 1, Quick: true}); err != nil {
		t.Fatalf("sibling tenant blocked by acme's quota: %v", err)
	}
	<-started

	// Releasing the blocked jobs frees the slot: acme can submit again.
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := acme.Submit(ctx, service.SubmitRequest{Experiment: "fig7", Seed: 64, Runs: 1, Quick: true})
		if err == nil {
			break
		}
		if !strings.Contains(err.Error(), "HTTP 429") || time.Now().After(deadline) {
			t.Fatalf("post-release submit: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTenantQuotaReleasedOnCancelAndFailure: cancelling a queued job and
// failing a running one both return their slots, so quota cannot leak on
// the unhappy paths.
func TestTenantQuotaReleasedOnCancelAndFailure(t *testing.T) {
	started, release := resetBlock()
	defer func() { close(release) }()
	s, c := tenantServer(t, "acme:key-acme:2:8", service.Config{Workers: 1})
	ctx := context.Background()
	acme := asTenant(c, "key-acme")

	// Slot 1: a job that occupies the single worker.
	blocker, err := acme.Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 71, Runs: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// Slot 2: a queued job.
	queued, err := acme.Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 72, Runs: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both slots held: the next submit bounces.
	if _, err := acme.Submit(ctx, service.SubmitRequest{Experiment: "fig7", Seed: 73, Runs: 1, Quick: true}); err == nil || !strings.Contains(err.Error(), "HTTP 429") {
		t.Fatalf("at-limit submit: err = %v, want HTTP 429", err)
	}

	// Cancel both: the running blocker unwinds at its cancellation check and
	// the queued job fails as the freed worker dequeues it. Both terminal
	// paths must return their slots.
	if err := acme.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	if err := acme.Cancel(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	if js := waitTerminal(t, acme, blocker.ID); js.State != service.StateFailed {
		t.Fatalf("cancelled running job = %s, want failed", js.State)
	}
	if js := waitTerminal(t, acme, queued.ID); js.State != service.StateFailed {
		t.Fatalf("cancelled queued job = %s, want failed", js.State)
	}
	if _, err := acme.Submit(ctx, service.SubmitRequest{Experiment: "fig7", Seed: 74, Runs: 1, Quick: true}); err != nil {
		t.Fatalf("submit after cancel did not reuse the freed slots: %v", err)
	}

	// A failing job frees its slot too.
	fail, err := acme.Submit(ctx, service.SubmitRequest{Experiment: "test-fail", Seed: 75, Runs: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	js := waitTerminal(t, acme, fail.ID)
	if js.State != service.StateFailed {
		t.Fatalf("test-fail job = %s, want failed", js.State)
	}
	// Every admitted job has reached a terminal state: active must be 0.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ten := s.Status().Tenants["acme"]
		if ten.Active == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant slots leaked: %+v", ten)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitTerminal polls a job through the client until it is done or failed.
func waitTerminal(t *testing.T, c *service.Client, id string) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		js, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if js.State == service.StateDone || js.State == service.StateFailed {
			return js
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, js.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTenantQueuedQuota: MaxQueued bounds the tenant's queue depth
// independently of MaxActive.
func TestTenantQueuedQuota(t *testing.T) {
	started, release := resetBlock()
	defer func() { close(release) }()
	_, c := tenantServer(t, "acme:key-acme:0:1", service.Config{Workers: 1})
	ctx := context.Background()
	acme := asTenant(c, "key-acme")

	if _, err := acme.Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 81, Runs: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
	<-started
	// One queued job fills the depth-1 queue quota.
	if _, err := acme.Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 82, Runs: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
	_, err := acme.Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 83, Runs: 1, Quick: true})
	if err == nil || !strings.Contains(err.Error(), "HTTP 429") {
		t.Fatalf("over queued-quota submit: err = %v, want HTTP 429", err)
	}
}

// TestTenantCacheHitsBypassQuota: cached results cost nothing and must not
// consume (or be blocked by) quota, even for a tenant at its limit.
func TestTenantCacheHitsBypassQuota(t *testing.T) {
	started, release := resetBlock()
	defer func() { close(release) }()
	_, c := tenantServer(t, "acme:key-acme:1:8", service.Config{Workers: 2})
	ctx := context.Background()
	acme := asTenant(c, "key-acme")

	// Warm the cache below the limit.
	warm, err := acme.Submit(ctx, service.SubmitRequest{Experiment: "fig7", Seed: 84, Runs: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, acme, warm.ID)
	// Fill the single slot.
	if _, err := acme.Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 85, Runs: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
	<-started
	// The cached resubmission sails through at the limit.
	js, err := acme.Submit(ctx, service.SubmitRequest{Experiment: "fig7", Seed: 84, Runs: 1, Quick: true})
	if err != nil {
		t.Fatalf("cache hit blocked by quota: %v", err)
	}
	if js.State != service.StateDone || !js.Cached {
		t.Errorf("resubmission = %s cached=%v, want immediate cached done", js.State, js.Cached)
	}
}

// TestAnonymousModeUnchanged: with no tenants configured there is no
// authentication, no quota, and no tenant status — the pre-tenancy surface,
// untouched.
func TestAnonymousModeUnchanged(t *testing.T) {
	s, c := newServer(t, service.Config{})
	ctx := context.Background()
	js, err := c.Submit(ctx, service.SubmitRequest{Experiment: "fig7", Seed: 86, Runs: 1, Quick: true, Tenant: "whoever"})
	if err != nil {
		t.Fatal(err)
	}
	if js.Tenant != "whoever" {
		t.Errorf("anonymous mode dropped the body's tenant field: %q", js.Tenant)
	}
	waitTerminal(t, c, js.ID)
	if ten := s.Status().Tenants; ten != nil {
		t.Errorf("anonymous /statusz grew a tenants section: %+v", ten)
	}
	// Streams and admin state stay open.
	if resp := rawStream(t, c.BaseURL, "/v1/jobs/"+js.ID+"/events", "", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("anonymous events: HTTP %d, want 200", resp.StatusCode)
	}
	if _, err := c.Admin(ctx); err != nil {
		t.Errorf("anonymous admin state: %v", err)
	}
}

// TestTenantRegistryRejectsBadConfig: duplicate names, reused keys, and
// missing fields fail construction rather than admitting ambiguity.
func TestTenantRegistryRejectsBadConfig(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]service.TenantConfig{
		{{Name: "", Key: "k"}},
		{{Name: "a", Key: ""}},
		{{Name: "a", Key: "k1"}, {Name: "a", Key: "k2"}},
		{{Name: "a", Key: "k"}, {Name: "b", Key: "k"}},
	}
	for i, cfgs := range bad {
		s, err := service.New(service.Config{Store: st, Fingerprint: "x", Tenants: cfgs})
		if err == nil {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			s.Drain(ctx)
			cancel()
			t.Errorf("config %d (%+v) accepted", i, cfgs)
		}
	}
}
