package service

// Streaming client: the push-based counterpart to Wait's polling. WatchJob
// subscribes to a job's SSE event stream and blocks until the terminal
// state event arrives, reconnecting with Last-Event-ID across transport
// failures and server-side drop markers so no lifecycle event is missed.
// qsmload -stream builds its time-to-first-event and event-gap measurements
// on WatchJobDetail's per-event callback.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// WatchResult summarises one watch: the terminal status (job streams) or
// batch summary (batch streams), plus transport-level accounting the load
// generator reports.
type WatchResult struct {
	// Status is the job's terminal status (job watches only).
	Status JobStatus
	// Summary is the terminal batch summary event's payload (batch watches
	// only).
	Summary json.RawMessage
	// Events counts data events received (markers excluded).
	Events int
	// Reconnects counts stream re-establishments after the first connect.
	Reconnects int
	// Drops counts server-side drop markers observed (each triggers a
	// resume from the marker's resume_id).
	Drops int
	// LastEventID is the highest event ID received.
	LastEventID uint64
}

// streamOutcome classifies why one stream attempt returned.
type streamOutcome int

const (
	streamEnded    streamOutcome = iota // EOF/error before a terminal event
	streamDone                          // terminal event received
	streamResumeAt                      // drop marker: reconnect to replay the gap
)

// WatchJob streams a job's events until it reaches a terminal state and
// returns that status. Reaching a failed state is not an error, matching
// Wait. It reconnects (with the retry policy's backoff) on transport
// failures and resumes from the last received event ID.
func (c *Client) WatchJob(ctx context.Context, id string) (JobStatus, error) {
	res, err := c.WatchJobDetail(ctx, id, 0, nil)
	return res.Status, err
}

// WatchJobDetail streams a job's events starting after afterID, invoking
// onEvent (when non-nil) for every data event received, until the terminal
// state event arrives.
func (c *Client) WatchJobDetail(ctx context.Context, id string, afterID uint64, onEvent func(StreamEvent)) (WatchResult, error) {
	terminal := func(ev StreamEvent, res *WatchResult) bool {
		if ev.Type != EventState {
			return false
		}
		var js JobStatus
		if json.Unmarshal(ev.Data, &js) != nil {
			return false
		}
		res.Status = js
		return js.State == StateDone || js.State == StateFailed
	}
	return c.watchStream(ctx, "/v1/jobs/"+url.PathEscape(id)+"/events", afterID, terminal, onEvent)
}

// WatchBatch streams a batch's aggregate events until the terminal batch
// summary event arrives; its payload lands in the result's Summary.
func (c *Client) WatchBatch(ctx context.Context, id string, afterID uint64, onEvent func(StreamEvent)) (WatchResult, error) {
	terminal := func(ev StreamEvent, res *WatchResult) bool {
		if ev.Type != EventBatch {
			return false
		}
		res.Summary = ev.Data
		return true
	}
	return c.watchStream(ctx, "/v1/batches/"+url.PathEscape(id)+"/events", afterID, terminal, onEvent)
}

// SubmitBatch posts a batch of jobs in one request. The server accepts and
// rejects items independently; inspect the returned per-item outcomes.
func (c *Client) SubmitBatch(ctx context.Context, reqs []SubmitRequest) (BatchStatus, error) {
	var bs BatchStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs:batch", BatchSubmitRequest{Jobs: reqs}, &bs)
	return bs, err
}

// Admin fetches the server's deep introspection snapshot.
func (c *Client) Admin(ctx context.Context) (AdminState, error) {
	var st AdminState
	err := c.do(ctx, http.MethodGet, "/v1/admin/state", nil, &st)
	return st, err
}

// watchStream drives the reconnect loop shared by job and batch watches.
// Consecutive failed attempts are bounded by the retry policy; any received
// event resets the failure budget, so a long stream that dies late still
// gets its full reconnect allowance.
func (c *Client) watchStream(ctx context.Context, path string, afterID uint64, terminal func(StreamEvent, *WatchResult) bool, onEvent func(StreamEvent)) (WatchResult, error) {
	res := WatchResult{LastEventID: afterID}
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	fails := 0
	first := true
	for {
		status, outcome, err := c.streamOnce(ctx, path, &res, terminal, onEvent)
		if !first {
			res.Reconnects++
		}
		first = false
		switch outcome {
		case streamDone:
			return res, nil
		case streamResumeAt:
			// The server dropped events for this subscriber but kept them in
			// its log: reconnect immediately and replay from the marker's
			// resume point. Not a failure.
			fails = 0
			continue
		}
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		if err == nil {
			// Stream closed cleanly before the terminal event (server
			// restart, mid-stream fault): resumable.
			err = io.ErrUnexpectedEOF
			status = http.StatusOK
		}
		fails++
		if fails >= attempts || (status != http.StatusOK && !retryable(status, err)) {
			return res, fmt.Errorf("qsmd: watch %s: %w", path, err)
		}
		c.log().Warn("stream attempt failed, resuming",
			"path", path, "after", res.LastEventID, "attempt", fails, "err", err)
		t := time.NewTimer(c.backoff(fails))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return res, ctx.Err()
		}
	}
}

// streamOnce opens one stream connection and consumes events until a
// terminal event, a drop marker, or the connection ends.
func (c *Client) streamOnce(ctx context.Context, path string, res *WatchResult, terminal func(StreamEvent, *WatchResult) bool, onEvent func(StreamEvent)) (int, streamOutcome, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return 0, streamEnded, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if res.LastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(res.LastEventID, 10))
	}
	if id := c.traceID(ctx); id != "" {
		req.Header.Set("X-Qsm-Trace", id)
	}
	for k, v := range c.Headers {
		req.Header.Set(k, v)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, streamEnded, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return resp.StatusCode, streamEnded, fmt.Errorf("qsmd: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return resp.StatusCode, streamEnded, fmt.Errorf("qsmd: HTTP %d", resp.StatusCode)
	}
	dec := NewSSEDecoder(resp.Body)
	for {
		ev, err := dec.Next()
		if err != nil {
			if err == io.EOF {
				err = nil
			}
			return resp.StatusCode, streamEnded, err
		}
		if ev.Type == EventDropped {
			// res.LastEventID already equals the marker's resume_id (the
			// last event actually written to us); reconnecting replays the
			// gap from the server's event log.
			res.Drops++
			return resp.StatusCode, streamResumeAt, nil
		}
		if ev.ID > 0 {
			res.LastEventID = ev.ID
		}
		res.Events++
		if onEvent != nil {
			onEvent(ev)
		}
		if terminal(ev, res) {
			return resp.StatusCode, streamDone, nil
		}
	}
}
