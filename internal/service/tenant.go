package service

// Multi-tenant admission: static API-key tenants with per-tenant quotas.
// Tenants are configuration (a -tenants flag spec or a JSON file), not a
// dynamic registry: each carries an API key, a concurrent-job quota
// (queued + running jobs holding admission), and a queue-depth quota. The
// HTTP layer authenticates submissions by key (X-Qsm-Api-Key or a bearer
// token) when any tenant is configured; with none configured the service
// is anonymous and behaves exactly as before — the request body's tenant
// field shapes fair queuing only.
//
// Quota accounting is deliberately simple and local: a job acquires its
// tenant's concurrency slot at admission (cache hits never consume quota —
// they cost nothing) and releases it exactly once when it reaches a
// terminal state, on whichever path got it there: done, failed, cancelled,
// coalesced, or drained. Rejections surface as *QuotaError, which the HTTP
// layer maps to 429 with a Retry-After. In a cluster, quotas apply on the
// node that admits the job.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// APIKeyHeader authenticates tenant submissions.
const APIKeyHeader = "X-Qsm-Api-Key"

// TenantConfig declares one API tenant.
type TenantConfig struct {
	// Name identifies the tenant in queuing, metrics, and status.
	Name string `json:"name"`
	// Key is the tenant's API key (X-Qsm-Api-Key or bearer token).
	Key string `json:"key"`
	// MaxActive bounds the tenant's concurrently admitted jobs (queued +
	// running); <= 0 means unlimited.
	MaxActive int `json:"max_active"`
	// MaxQueued bounds the tenant's queued jobs; <= 0 means unlimited.
	MaxQueued int `json:"max_queued"`
}

// QuotaError is the typed per-tenant admission rejection; the HTTP layer
// maps it to 429 with a Retry-After header.
type QuotaError struct {
	Tenant string
	// Kind is "concurrent" (MaxActive) or "queued" (MaxQueued).
	Kind  string
	Limit int
	// RetryAfter is the suggested backoff surfaced in the Retry-After
	// header.
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("service: tenant %q over %s-job quota (limit %d)", e.Tenant, e.Kind, e.Limit)
}

// ErrUnauthorized rejects keyed-mode requests without a known API key.
var ErrUnauthorized = errors.New("service: missing or unknown API key")

// tenantState is one tenant's live accounting.
type tenantState struct {
	cfg       TenantConfig
	active    int // jobs holding a concurrency slot
	submitted uint64
	rejected  uint64
}

// tenantRegistry resolves API keys and enforces quotas. The zero-value
// (nil-map) registry is the anonymous mode: every method passes requests
// through untouched.
type tenantRegistry struct {
	mu     sync.Mutex
	byName map[string]*tenantState
	byKey  map[string]*tenantState
}

func newTenantRegistry(cfgs []TenantConfig) (*tenantRegistry, error) {
	reg := &tenantRegistry{}
	if len(cfgs) == 0 {
		return reg, nil
	}
	reg.byName = map[string]*tenantState{}
	reg.byKey = map[string]*tenantState{}
	for _, c := range cfgs {
		if c.Name == "" {
			return nil, errors.New("service: tenant with empty name")
		}
		if c.Key == "" {
			return nil, fmt.Errorf("service: tenant %q has no API key", c.Name)
		}
		if _, dup := reg.byName[c.Name]; dup {
			return nil, fmt.Errorf("service: duplicate tenant %q", c.Name)
		}
		if _, dup := reg.byKey[c.Key]; dup {
			return nil, fmt.Errorf("service: tenant %q reuses another tenant's key", c.Name)
		}
		t := &tenantState{cfg: c}
		reg.byName[c.Name] = t
		reg.byKey[c.Key] = t
	}
	return reg, nil
}

// enabled reports keyed multi-tenant mode (any tenant configured).
func (reg *tenantRegistry) enabled() bool { return reg != nil && len(reg.byName) > 0 }

// resolveKey maps an API key to its tenant name.
func (reg *tenantRegistry) resolveKey(key string) (string, bool) {
	if !reg.enabled() || key == "" {
		return "", false
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	t, ok := reg.byKey[key]
	if !ok {
		return "", false
	}
	return t.cfg.Name, true
}

// acquire checks and takes one admission slot for the named tenant,
// reporting whether a slot was actually held (unknown and anonymous tenants
// carry no quota). queued is the tenant's current queue depth, checked
// against MaxQueued before the slot is taken.
func (reg *tenantRegistry) acquire(name string, queued int) (bool, error) {
	if !reg.enabled() || name == "" {
		return false, nil
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	t, ok := reg.byName[name]
	if !ok {
		return false, nil
	}
	t.submitted++
	if t.cfg.MaxActive > 0 && t.active >= t.cfg.MaxActive {
		t.rejected++
		return false, &QuotaError{Tenant: name, Kind: "concurrent", Limit: t.cfg.MaxActive, RetryAfter: time.Second}
	}
	if t.cfg.MaxQueued > 0 && queued >= t.cfg.MaxQueued {
		t.rejected++
		return false, &QuotaError{Tenant: name, Kind: "queued", Limit: t.cfg.MaxQueued, RetryAfter: time.Second}
	}
	t.active++
	return true, nil
}

// release returns one admission slot.
func (reg *tenantRegistry) release(name string) {
	if !reg.enabled() {
		return
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if t, ok := reg.byName[name]; ok && t.active > 0 {
		t.active--
	}
}

// TenantStatus is one tenant's row on /statusz and the admin state.
type TenantStatus struct {
	Active    int    `json:"active"`
	MaxActive int    `json:"max_active,omitempty"`
	Queued    int    `json:"queued"`
	MaxQueued int    `json:"max_queued,omitempty"`
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
}

// status snapshots every configured tenant; queueDepths supplies the
// per-tenant queued counts.
func (reg *tenantRegistry) status(queueDepths map[string]int) map[string]TenantStatus {
	if !reg.enabled() {
		return nil
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	out := make(map[string]TenantStatus, len(reg.byName))
	for name, t := range reg.byName {
		out[name] = TenantStatus{
			Active:    t.active,
			MaxActive: t.cfg.MaxActive,
			Queued:    queueDepths[name],
			MaxQueued: t.cfg.MaxQueued,
			Submitted: t.submitted,
			Rejected:  t.rejected,
		}
	}
	return out
}

// writeMetricsText appends per-tenant self-metrics in Prometheus text
// format (tenant="..." labels on each series).
func (reg *tenantRegistry) writeMetricsText(w io.Writer) error {
	if !reg.enabled() {
		return nil
	}
	rec := obs.New(obs.Config{Metrics: true})
	reg.mu.Lock()
	for name, t := range reg.byName {
		label := "tenant=" + name
		rec.Counter("tenant", "jobs_submitted", label).Add(t.submitted)
		rec.Counter("tenant", "jobs_rejected", label).Add(t.rejected)
		rec.Gauge("tenant", "active_jobs", label).Set(int64(t.active))
	}
	reg.mu.Unlock()
	return rec.WritePrometheusText(w)
}

// authTenant resolves the request's tenant in keyed mode: the API-key
// header or an Authorization bearer token must name a configured tenant.
// Requests already forwarded by a cluster peer are pre-authenticated by the
// entrance node. In anonymous mode it returns "" and the caller keeps the
// request body's tenant field.
func (s *Scheduler) authTenant(r *http.Request) (string, error) {
	if !s.tenants.enabled() {
		return "", nil
	}
	if r.Header.Get(ForwardedHeader) != "" {
		return "", nil
	}
	key := r.Header.Get(APIKeyHeader)
	if key == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			key = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	name, ok := s.tenants.resolveKey(key)
	if !ok {
		return "", ErrUnauthorized
	}
	return name, nil
}

// ParseTenants parses a compact tenant spec: comma-separated
// "name:key:maxactive:maxqueued" clauses (the two limits optional; 0 or
// absent means unlimited). Example:
//
//	alpha:alpha-key:2:4,beta:beta-key:8:0
func ParseTenants(spec string) ([]TenantConfig, error) {
	var out []TenantConfig
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("service: tenant clause %q is not name:key[:maxactive[:maxqueued]]", clause)
		}
		c := TenantConfig{Name: parts[0], Key: parts[1]}
		if len(parts) > 2 && parts[2] != "" {
			n, err := strconv.Atoi(parts[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("service: tenant clause %q: bad maxactive", clause)
			}
			c.MaxActive = n
		}
		if len(parts) > 3 && parts[3] != "" {
			n, err := strconv.Atoi(parts[3])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("service: tenant clause %q: bad maxqueued", clause)
			}
			c.MaxQueued = n
		}
		out = append(out, c)
	}
	return out, nil
}

// LoadTenantsFile reads a JSON array of TenantConfig.
func LoadTenantsFile(path string) ([]TenantConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []TenantConfig
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("service: tenants file %s: %w", path, err)
	}
	return out, nil
}
