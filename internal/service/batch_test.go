package service_test

// Batch submission and aggregate-stream tests, plus the leader-cancel
// regressions: cancelling the leader of a coalesced batch must not taint
// its followers — the next follower is promoted and one simulation still
// serves everyone behind it.

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// batchSummary is the terminal EventBatch payload.
type batchSummary struct {
	Batch  string `json:"batch"`
	Total  int    `json:"total"`
	Done   int    `json:"done"`
	Failed int    `json:"failed"`
}

// TestBatchSubmitMixedOutcomes: one request carrying admissible jobs and an
// unknown experiment gets per-item outcomes — the bad item lands with its
// HTTP-shaped code, the good items run, and the aggregate stream closes
// with a summary counting only the admitted members.
func TestBatchSubmitMixedOutcomes(t *testing.T) {
	_, c := newServer(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	bs, err := c.SubmitBatch(ctx, []service.SubmitRequest{
		{Experiment: "fig7", Seed: 201, Runs: 1, Quick: true},
		{Experiment: "no-such-experiment", Seed: 202},
		{Experiment: "test-fail", Seed: 203, Runs: 1, Quick: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Accepted != 2 || bs.Rejected != 1 {
		t.Fatalf("batch = %d accepted / %d rejected, want 2/1 (%+v)", bs.Accepted, bs.Rejected, bs)
	}
	if !strings.HasPrefix(bs.EventsPath, "/v1/batches/") || !strings.HasSuffix(bs.EventsPath, "/events") {
		t.Errorf("events path = %q", bs.EventsPath)
	}
	if len(bs.Jobs) != 3 {
		t.Fatalf("per-item outcomes = %d, want 3", len(bs.Jobs))
	}
	if bs.Jobs[0].Job == nil || bs.Jobs[0].Error != "" {
		t.Errorf("item 0 = %+v, want an admitted job", bs.Jobs[0])
	}
	if bs.Jobs[1].Job != nil || bs.Jobs[1].Code != 400 || !strings.Contains(bs.Jobs[1].Error, "unknown experiment") {
		t.Errorf("item 1 = %+v, want a 400 rejection", bs.Jobs[1])
	}
	if bs.Jobs[2].Job == nil {
		t.Errorf("item 2 = %+v, want an admitted (if doomed) job", bs.Jobs[2])
	}

	// The aggregate stream carries every member's lifecycle and closes with
	// the summary: 2 admitted members, one done, one failed.
	res, err := c.WatchBatch(ctx, bs.ID, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum batchSummary
	if err := json.Unmarshal(res.Summary, &sum); err != nil {
		t.Fatalf("summary payload %q: %v", res.Summary, err)
	}
	if sum.Batch != bs.ID || sum.Total != 2 || sum.Done != 1 || sum.Failed != 1 {
		t.Errorf("batch summary = %+v, want total 2, done 1, failed 1 on %s", sum, bs.ID)
	}
}

// TestBatchShapeErrors: empty and oversized batches are rejected wholesale.
func TestBatchShapeErrors(t *testing.T) {
	s, c := newServer(t, service.Config{})
	ctx := context.Background()

	if _, err := c.SubmitBatch(ctx, nil); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("empty batch: err = %v, want HTTP 400", err)
	}
	huge := make([]service.SubmitRequest, 257)
	for i := range huge {
		huge[i] = service.SubmitRequest{Experiment: "fig7", Seed: int64(i), Runs: 1, Quick: true}
	}
	if _, err := c.SubmitBatch(ctx, huge); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("oversized batch: err = %v, want HTTP 400", err)
	}
	// Typed errors hold on the scheduler API too.
	if _, err := s.SubmitBatch(ctx, nil); !errors.Is(err, service.ErrBatchEmpty) {
		t.Errorf("SubmitBatch(nil) = %v, want ErrBatchEmpty", err)
	}
}

// TestBatchCoalescesIdenticalMembers: identical submissions inside one
// batch coalesce behind one simulation, exactly like identical submissions
// across requests.
func TestBatchCoalescesIdenticalMembers(t *testing.T) {
	started, release := resetBlock()
	_, c := newServer(t, service.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Occupy the worker so the batch members queue together.
	blocker, err := c.Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 210, Runs: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	bs, err := c.SubmitBatch(ctx, []service.SubmitRequest{
		{Experiment: "test-block", Seed: 211, Runs: 1, Quick: true},
		{Experiment: "test-block", Seed: 211, Runs: 1, Quick: true},
		{Experiment: "test-block", Seed: 211, Runs: 1, Quick: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Accepted != 3 {
		t.Fatalf("batch accepted %d, want 3", bs.Accepted)
	}
	close(release)
	res, err := c.WatchBatch(ctx, bs.ID, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum batchSummary
	if err := json.Unmarshal(res.Summary, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Total != 3 || sum.Done != 3 || sum.Failed != 0 {
		t.Fatalf("summary = %+v, want all 3 done", sum)
	}

	// Exactly one member computed; the other two rode it.
	var computed, coalesced int
	for _, item := range bs.Jobs {
		js := waitTerminal(t, c, item.Job.ID)
		if js.Coalesced {
			coalesced++
		} else if !js.Cached {
			computed++
		}
	}
	if computed != 1 || coalesced != 2 {
		t.Errorf("batch ran %d computes with %d coalesced, want 1 and 2", computed, coalesced)
	}
	waitTerminal(t, c, blocker.ID)
}

// TestBatchLeaderCancelBeforeRun: the leader of a coalesced batch is
// cancelled while still queued. The first follower must be promoted to
// leader and compute; the second still coalesces behind it.
func TestBatchLeaderCancelBeforeRun(t *testing.T) {
	started, release := resetBlock()
	s := newSched(t, service.Config{Workers: 1, QueueCap: 16})

	blocker := submit(t, s, "test-block", 220)
	<-started

	leader := submit(t, s, "test-block", 221)
	f1 := submit(t, s, "test-block", 221)
	f2 := submit(t, s, "test-block", 221)
	if !s.Cancel(leader.ID) {
		t.Fatal("cancel returned false")
	}
	close(release)

	if js := waitJob(t, s, leader.ID); js.State != service.StateFailed || !strings.Contains(js.Error, context.Canceled.Error()) {
		t.Errorf("cancelled leader = %s (%q), want failed with context.Canceled", js.State, js.Error)
	}
	j1 := waitJob(t, s, f1.ID)
	if j1.State != service.StateDone || j1.Coalesced {
		t.Errorf("promoted follower = %s coalesced=%v, want done via its own run", j1.State, j1.Coalesced)
	}
	j2 := waitJob(t, s, f2.ID)
	if j2.State != service.StateDone || !j2.Coalesced {
		t.Errorf("second follower = %s coalesced=%v, want done riding the promoted leader", j2.State, j2.Coalesced)
	}
	waitJob(t, s, blocker.ID)
}

// TestBatchLeaderCancelMidRun: the leader is cancelled while executing. Its
// attempt unwinds with the context error, the follower is promoted and
// completes, and the last member still coalesces.
func TestBatchLeaderCancelMidRun(t *testing.T) {
	started1, release1 := resetBlock()
	s := newSched(t, service.Config{Workers: 1, QueueCap: 16})

	blocker := submit(t, s, "test-block", 230)
	<-started1

	// Re-arm: the batch members block on fresh channels, independent of the
	// blocker already parked on the old ones.
	started2, release2 := resetBlock()
	leader := submit(t, s, "test-block", 231)
	f1 := submit(t, s, "test-block", 231)
	f2 := submit(t, s, "test-block", 231)

	close(release1) // blocker finishes; the worker pops the coalesced batch
	<-started2      // leader is mid-run
	if !s.Cancel(leader.ID) {
		t.Fatal("cancel returned false")
	}
	if js := waitJob(t, s, leader.ID); js.State != service.StateFailed || !strings.Contains(js.Error, context.Canceled.Error()) {
		t.Errorf("mid-run cancelled leader = %s (%q), want failed with context.Canceled", js.State, js.Error)
	}
	<-started2 // the promoted follower's own attempt
	close(release2)

	j1 := waitJob(t, s, f1.ID)
	if j1.State != service.StateDone || j1.Coalesced {
		t.Errorf("promoted follower = %s coalesced=%v, want done via its own run", j1.State, j1.Coalesced)
	}
	j2 := waitJob(t, s, f2.ID)
	if j2.State != service.StateDone || !j2.Coalesced {
		t.Errorf("second follower = %s coalesced=%v, want done riding the promoted leader", j2.State, j2.Coalesced)
	}
	waitJob(t, s, blocker.ID)
}
