package service

// The push side of the API: per-job (and per-batch) event streams served
// over SSE on GET /v1/jobs/{id}/events, with an NDJSON fallback negotiated
// via Accept. Every job carries a bounded eventLog of its lifecycle (state)
// and progress events; subscribers fan out through non-blocking buffered
// channels, so a slow or stuck consumer can never hold a scheduler worker —
// its overflowed events are dropped and the writer emits an EventDropped
// marker carrying the resume ID, from which a reconnect with Last-Event-ID
// replays the gap out of the retained log. Publishing is independent of
// delivery: the scheduler's notify path appends and returns; all blocking
// I/O happens on the per-connection handler goroutine.
//
// Resume semantics: event IDs are 1-based and contiguous per stream. A
// client reconnecting with Last-Event-ID: K (or ?after=K) replays every
// retained event with ID > K. If the log has trimmed past K the first
// delivered event exposes the gap and the writer emits a dropped marker
// first, so clients always learn what they missed. The stream ends (the
// handler returns, closing the response) after the terminal state event is
// delivered.
//
// The stream_drop and stream_stall fault classes act in the writer between
// event encodes — exactly where real connections die — so the chaos harness
// can kill and stall streams mid-flight deterministically.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

const (
	// defaultStreamBuffer is each subscriber's in-flight event buffer.
	defaultStreamBuffer = 64
	// defaultStreamLogCap is the retained per-stream event log replayed on
	// resume.
	defaultStreamLogCap = 256
	// defaultStreamHeartbeat is the idle-connection heartbeat period.
	defaultStreamHeartbeat = 15 * time.Second
	// maxBatchJobs bounds one POST /v1/jobs:batch submission.
	maxBatchJobs = 256
)

// streamHub aggregates stream self-metrics and the live subscriber registry
// the admin endpoint reports.
type streamHub struct {
	opened    atomic.Uint64 // subscriptions ever opened
	active    atomic.Int64  // currently connected subscribers
	published atomic.Uint64 // events appended across all streams
	dropped   atomic.Uint64 // events dropped on full subscriber buffers

	mu   sync.Mutex
	subs map[*subscriber]struct{}
}

func newStreamHub() *streamHub { return &streamHub{subs: map[*subscriber]struct{}{}} }

// subscriber is one connected stream consumer. The publisher never blocks
// on it: events flow through the buffered channel or are counted as
// dropped; done closes (idempotently) when the stream reaches its terminal
// event.
type subscriber struct {
	stream string
	remote string
	since  time.Time
	ch     chan StreamEvent
	done   chan struct{}
	end    sync.Once

	sent    atomic.Uint64 // last event ID written to the wire
	dropped atomic.Uint64 // events this subscriber's buffer rejected
}

func (sub *subscriber) finish() { sub.end.Do(func() { close(sub.done) }) }

// eventLog is one stream's bounded, replayable event history plus its live
// subscribers. All methods are safe for concurrent use; publish never
// blocks.
type eventLog struct {
	stream string
	cap    int
	hub    *streamHub

	mu     sync.Mutex
	events []StreamEvent // retained tail, oldest first
	lastID uint64
	closed bool
	// failedEnd remembers whether the terminal event was a failure, for
	// batch accounting when a closed log replays into a late attach.
	failedEnd bool
	subs      map[*subscriber]struct{}
	fwd       []*batchStream // attached batch aggregates (job streams only)
}

func newEventLog(stream string, capacity int, hub *streamHub) *eventLog {
	if capacity <= 0 {
		capacity = defaultStreamLogCap
	}
	return &eventLog{stream: stream, cap: capacity, hub: hub, subs: map[*subscriber]struct{}{}}
}

// publish appends one event, fans it out without blocking (a full
// subscriber buffer drops the event; the writer later surfaces the gap as
// an EventDropped marker), mirrors it into attached batch streams, and
// closes the stream after a terminal event. failed qualifies a terminal
// event for batch accounting.
func (l *eventLog) publish(typ string, data []byte, terminal, failed bool) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.lastID++
	ev := StreamEvent{ID: l.lastID, Type: typ, Data: data}
	l.events = append(l.events, ev)
	if len(l.events) > l.cap {
		l.events = append(l.events[:0], l.events[len(l.events)-l.cap:]...)
	}
	if l.hub != nil {
		l.hub.published.Add(1)
	}
	for sub := range l.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			if l.hub != nil {
				l.hub.dropped.Add(1)
			}
		}
	}
	if terminal {
		l.closed = true
		l.failedEnd = failed
		for sub := range l.subs {
			sub.finish()
		}
	}
	fwd := l.fwd
	l.mu.Unlock()
	for _, b := range fwd {
		b.forward(typ, data, terminal, failed)
	}
}

// watched reports whether anything consumes this log right now (a live
// subscriber or an attached batch); progress publishing is skipped when
// nothing watches, so idle jobs pay nothing per progress callback.
func (l *eventLog) watched() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.subs) > 0 || len(l.fwd) > 0
}

// last returns the newest event ID and whether the stream has closed.
func (l *eventLog) last() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastID, l.closed
}

// attach mirrors l's events — those already retained and all future ones —
// into batch stream b. The replay happens under l's lock, so b sees each
// member event exactly once, in publish order, with the member's terminal
// flagged for batch completion accounting.
func (l *eventLog) attach(b *batchStream) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, ev := range l.events {
		terminal := l.closed && i == len(l.events)-1
		b.forward(ev.Type, ev.Data, terminal, terminal && l.failedEnd)
	}
	if !l.closed {
		l.fwd = append(l.fwd, b)
	}
}

// subscribe registers a consumer resuming after afterID: retained events
// with greater IDs are preloaded into the buffer, live events follow, and a
// stream that already closed finishes the subscription as soon as the
// replay drains. The returned cancel is idempotent and must be called when
// the consumer disconnects.
func (l *eventLog) subscribe(afterID uint64, remote string, buffer int) (*subscriber, func()) {
	if buffer <= 0 {
		buffer = defaultStreamBuffer
	}
	l.mu.Lock()
	var replay []StreamEvent
	for _, ev := range l.events {
		if ev.ID > afterID {
			replay = append(replay, ev)
		}
	}
	sub := &subscriber{
		stream: l.stream,
		remote: remote,
		since:  time.Now(),
		ch:     make(chan StreamEvent, buffer+len(replay)),
		done:   make(chan struct{}),
	}
	for _, ev := range replay {
		sub.ch <- ev
	}
	l.subs[sub] = struct{}{}
	closed := l.closed
	l.mu.Unlock()
	if closed {
		sub.finish()
	}
	if l.hub != nil {
		l.hub.opened.Add(1)
		l.hub.active.Add(1)
		l.hub.mu.Lock()
		l.hub.subs[sub] = struct{}{}
		l.hub.mu.Unlock()
	}
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			l.mu.Lock()
			delete(l.subs, sub)
			l.mu.Unlock()
			sub.finish()
			if l.hub != nil {
				l.hub.active.Add(-1)
				l.hub.mu.Lock()
				delete(l.hub.subs, sub)
				l.hub.mu.Unlock()
			}
		})
	}
	return sub, cancel
}

// publishState appends a lifecycle event (and closes the stream on a
// terminal one).
func (j *job) publishState(st JobStatus) {
	if j.events == nil {
		return
	}
	data, err := json.Marshal(st)
	if err != nil {
		return
	}
	terminal := st.State == StateDone || st.State == StateFailed
	j.events.publish(EventState, data, terminal, st.State == StateFailed)
}

// publishProgress appends a progress event when anything is watching; an
// unwatched job skips the marshal and the append entirely, so streaming
// costs nothing on jobs nobody subscribed to.
func (j *job) publishProgress() {
	if j.events == nil || !j.events.watched() {
		return
	}
	j.mu.Lock()
	p := j.progress
	id := j.id
	j.mu.Unlock()
	data, err := json.Marshal(struct {
		Job string `json:"job"`
		JobProgress
	}{Job: id, JobProgress: p})
	if err != nil {
		return
	}
	j.events.publish(EventProgress, data, false, false)
}

// resumeAfter extracts the stream resume position: the Last-Event-ID header
// (what SSE clients send on reconnect) or the ?after= query fallback.
func resumeAfter(r *http.Request) uint64 {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("after")
	}
	n, _ := strconv.ParseUint(v, 10, 64)
	return n
}

func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

func (s *Scheduler) streamBuffer() int {
	if s.cfg.StreamBuffer > 0 {
		return s.cfg.StreamBuffer
	}
	return defaultStreamBuffer
}

func (s *Scheduler) streamHeartbeat() time.Duration {
	if s.cfg.StreamHeartbeat > 0 {
		return s.cfg.StreamHeartbeat
	}
	return defaultStreamHeartbeat
}

func (s *Scheduler) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if _, err := s.authTenant(r); err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: no such job"))
		return
	}
	s.serveStream(w, r, j.events)
}

func (s *Scheduler) handleBatchEvents(w http.ResponseWriter, r *http.Request) {
	if _, err := s.authTenant(r); err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	s.mu.Lock()
	b, ok := s.batches[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: no such batch"))
		return
	}
	s.serveStream(w, r, b.log)
}

// serveStream writes l's events to one connection until the stream's
// terminal event is delivered, the client goes away, or an injected stream
// fault kills the connection. Heartbeat comments keep idle connections
// distinguishable from dead ones.
func (s *Scheduler) serveStream(w http.ResponseWriter, r *http.Request, l *eventLog) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("service: response writer cannot stream"))
		return
	}
	after := resumeAfter(r)
	ndjson := wantsNDJSON(r)
	ctype := "text/event-stream"
	if ndjson {
		ctype = "application/x-ndjson"
	}
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sub, cancel := l.subscribe(after, r.RemoteAddr, s.streamBuffer())
	defer cancel()

	log := obs.TraceContextFrom(r.Context()).Logger()
	if log == nil {
		log = s.cfg.Log
	}
	log.Info("stream opened", "stream", l.stream, "after", after, "format", ctype)
	defer log.Info("stream closed", "stream", l.stream)

	lastWritten := after
	emit := func(ev StreamEvent) error {
		if s.cfg.Faults.Fire(faults.StreamDrop) {
			log.Warn("injected stream drop", "fault", faults.StreamDrop.String(), "stream", l.stream)
			panic(http.ErrAbortHandler)
		}
		if d := s.cfg.Faults.Delay(faults.StreamStall); d > 0 {
			log.Warn("injected stream stall", "fault", faults.StreamStall.String(), "stream", l.stream, "delay", d)
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				return r.Context().Err()
			}
		}
		var err error
		if ndjson {
			var buf []byte
			if buf, err = json.Marshal(ev); err == nil {
				buf = append(buf, '\n')
				_, err = w.Write(buf)
			}
		} else {
			err = EncodeSSE(w, ev)
		}
		if err != nil {
			return err
		}
		flusher.Flush()
		if ev.ID > 0 {
			sub.sent.Store(ev.ID)
		}
		return nil
	}
	// marker surfaces a delivery gap: n events after lastWritten never made
	// this subscriber's buffer. The frame carries no SSE id on purpose — the
	// client's Last-Event-ID stays at the last delivered event, so a
	// reconnect replays the gap from the retained log.
	marker := func(n uint64) error {
		data, _ := json.Marshal(map[string]uint64{"dropped": n, "resume_id": lastWritten})
		return emit(StreamEvent{Type: EventDropped, Data: data})
	}
	deliver := func(ev StreamEvent) error {
		if ev.ID > lastWritten+1 {
			if err := marker(ev.ID - lastWritten - 1); err != nil {
				return err
			}
		}
		if err := emit(ev); err != nil {
			return err
		}
		lastWritten = ev.ID
		return nil
	}

	tick := time.NewTicker(s.streamHeartbeat())
	defer tick.Stop()
	for {
		select {
		case ev := <-sub.ch:
			if deliver(ev) != nil {
				return
			}
		case <-sub.done:
			// Terminal event published: drain what is buffered, then flag
			// any still-undelivered tail (a drop that swallowed the terminal
			// event) so the client knows to resume.
			for {
				select {
				case ev := <-sub.ch:
					if deliver(ev) != nil {
						return
					}
				default:
					if last, _ := l.last(); last > lastWritten {
						marker(last - lastWritten)
					}
					return
				}
			}
		case <-tick.C:
			var err error
			if ndjson {
				_, err = fmt.Fprintln(w, `{"event":"heartbeat"}`)
			} else {
				err = WriteSSEComment(w, "hb")
			}
			if err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// StreamStatus summarises the streaming layer for /statusz and qsmtop.
type StreamStatus struct {
	Subscribers int64  `json:"subscribers"`
	Opened      uint64 `json:"opened"`
	Published   uint64 `json:"published"`
	Dropped     uint64 `json:"dropped"`
}

func (h *streamHub) status() StreamStatus {
	return StreamStatus{
		Subscribers: h.active.Load(),
		Opened:      h.opened.Load(),
		Published:   h.published.Load(),
		Dropped:     h.dropped.Load(),
	}
}

// SubscriberInfo is one live stream consumer in the admin state.
type SubscriberInfo struct {
	Stream       string  `json:"stream"`
	Remote       string  `json:"remote,omitempty"`
	SinceSeconds float64 `json:"since_seconds"`
	LastSentID   uint64  `json:"last_sent_id"`
	Buffered     int     `json:"buffered"`
	Dropped      uint64  `json:"dropped"`
}

func (h *streamHub) subscribers() []SubscriberInfo {
	h.mu.Lock()
	subs := make([]*subscriber, 0, len(h.subs))
	for sub := range h.subs {
		subs = append(subs, sub)
	}
	h.mu.Unlock()
	out := make([]SubscriberInfo, 0, len(subs))
	for _, sub := range subs {
		out = append(out, SubscriberInfo{
			Stream:       sub.stream,
			Remote:       sub.remote,
			SinceSeconds: time.Since(sub.since).Seconds(),
			LastSentID:   sub.sent.Load(),
			Buffered:     len(sub.ch),
			Dropped:      sub.dropped.Load(),
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Stream < out[b].Stream })
	return out
}
