// Package service is the experiment-serving layer behind cmd/qsmd: a job
// scheduler wrapping experiments.Run with a bounded admission queue, a
// content-addressed result cache, per-job lifecycle tracking
// (queued → running → done/failed) with live progress, context-based
// cancellation, and graceful drain. Every shape here — admission control,
// memoization, request lifecycle, drain on shutdown — is the standard
// serving-stack vocabulary, applied to parameter-sweep simulations.
//
// Identical submissions are served from the store: a hit at admission
// completes the job without queuing, and two concurrent identical jobs
// share one simulation through the store's single-flight path. Because the
// simulator is deterministic in the keyed options, cached tables are
// byte-identical to recomputation.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/store"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// QueueFullError is the typed admission-control rejection returned when the
// submission queue is at capacity. Callers see it immediately instead of
// blocking; the HTTP layer maps it to 429.
type QueueFullError struct{ Capacity int }

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: queue full (capacity %d)", e.Capacity)
}

// ErrDraining rejects submissions arriving after Drain began.
var ErrDraining = errors.New("service: shutting down")

// ErrUnknownExperiment rejects submissions naming no registered experiment.
var ErrUnknownExperiment = errors.New("service: unknown experiment")

// Config parameterises a Scheduler.
type Config struct {
	// Store is the content-addressed result cache. Required.
	Store *store.Store
	// QueueCap bounds the submission queue; admission beyond it returns
	// QueueFullError. <= 0 means 64.
	QueueCap int
	// Workers is the number of jobs simulated concurrently. <= 0 means 2.
	Workers int
	// SimParallelism is each job's Options.Parallelism (how many worker
	// goroutines one simulation sweep fans across). 0 means GOMAXPROCS.
	SimParallelism int
	// Fingerprint identifies the code in cache keys; empty means
	// store.Fingerprint().
	Fingerprint string
	// CollectMetrics attaches an obs sink to each computed job and stores
	// the aggregated metrics JSON (and simulated-event counts) in entries.
	CollectMetrics bool
}

// Request is one experiment submission.
type Request struct {
	Experiment string
	Options    experiments.OptionsKey
}

// JobProgress is a point-in-time view of a running sweep.
type JobProgress struct {
	// Done counts completed (sweep-point, run) simulation jobs across all
	// of the experiment's sweeps so far.
	Done int `json:"done"`
	// SweepPoints and SweepRuns describe the current sweep's grid, when a
	// sweep has reported progress.
	SweepPoints int `json:"sweep_points,omitempty"`
	SweepRuns   int `json:"sweep_runs,omitempty"`
}

// JobStatus is the externally visible snapshot of a job; it is what the
// HTTP API serializes.
type JobStatus struct {
	ID         string                 `json:"id"`
	Experiment string                 `json:"experiment"`
	Options    experiments.OptionsKey `json:"options"`
	State      State                  `json:"state"`
	// Cached reports the job was served from the result store (at admission
	// or by sharing another job's in-flight computation).
	Cached   bool   `json:"cached"`
	CacheKey string `json:"cache_key"`
	// ResultKey addresses the result under /v1/results/{key} once done.
	ResultKey      string      `json:"result_key,omitempty"`
	Error          string      `json:"error,omitempty"`
	Progress       JobProgress `json:"progress"`
	CreatedAt      time.Time   `json:"created_at"`
	ElapsedSeconds float64     `json:"elapsed_seconds"`
}

// job is the scheduler-internal mutable record behind a JobStatus.
type job struct {
	seq        int
	id         string
	experiment string
	opts       experiments.OptionsKey
	cacheKey   string
	ctx        context.Context
	cancel     context.CancelFunc

	mu        sync.Mutex
	state     State
	cached    bool
	errMsg    string
	resultKey string
	progress  JobProgress
	created   time.Time
	finished  time.Time
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	return JobStatus{
		ID:             j.id,
		Experiment:     j.experiment,
		Options:        j.opts,
		State:          j.state,
		Cached:         j.cached,
		CacheKey:       j.cacheKey,
		ResultKey:      j.resultKey,
		Error:          j.errMsg,
		Progress:       j.progress,
		CreatedAt:      j.created,
		ElapsedSeconds: end.Sub(j.created).Seconds(),
	}
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
}

func (j *job) finish(resultKey string, cached bool) {
	j.mu.Lock()
	j.state = StateDone
	j.resultKey = resultKey
	j.cached = cached
	j.finished = time.Now()
	j.mu.Unlock()
}

func (j *job) fail(err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.errMsg = err.Error()
	j.finished = time.Now()
	j.mu.Unlock()
}

// onProgress feeds experiments.Options.Progress; it runs on simulation
// worker goroutines.
func (j *job) onProgress(p experiments.Progress) {
	j.mu.Lock()
	j.progress.Done++
	j.progress.SweepPoints = p.Points
	j.progress.SweepRuns = p.Runs
	j.mu.Unlock()
}

// Scheduler accepts experiment jobs, runs them on a bounded worker pool,
// and memoizes results through the store.
type Scheduler struct {
	cfg        Config
	queue      chan *job
	rootCtx    context.Context
	rootCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	nextSeq  int
	draining bool

	// met guards the obs registry: obs recorders are single-goroutine by
	// design, and here workers and scrape handlers share one.
	met struct {
		sync.Mutex
		rec        *obs.Recorder
		submitted  *obs.Counter
		rejected   *obs.Counter
		failed     *obs.Counter
		hits       *obs.Counter
		misses     *obs.Counter
		queueDepth *obs.Gauge
		inflight   *obs.Gauge
		latency    *obs.Histogram
	}
}

// New starts a scheduler and its worker pool. Stop it with Drain.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Store == nil {
		return nil, errors.New("service: Config.Store is required")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Fingerprint == "" {
		cfg.Fingerprint = store.Fingerprint()
	}
	s := &Scheduler{
		cfg:   cfg,
		queue: make(chan *job, cfg.QueueCap),
		jobs:  map[string]*job{},
	}
	s.rootCtx, s.rootCancel = context.WithCancel(context.Background())
	rec := obs.New(obs.Config{Metrics: true})
	s.met.rec = rec
	s.met.submitted = rec.Counter("service", "jobs_submitted", "")
	s.met.rejected = rec.Counter("service", "jobs_rejected", "")
	s.met.failed = rec.Counter("service", "jobs_failed", "")
	s.met.hits = rec.Counter("service", "cache_hits", "")
	s.met.misses = rec.Counter("service", "cache_misses", "")
	s.met.queueDepth = rec.Gauge("service", "queue_depth", "")
	s.met.inflight = rec.Gauge("service", "inflight_jobs", "")
	s.met.latency = rec.Histogram("service", "job_latency_seconds", "", obs.ExpBuckets(0.001, 4, 12))
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// metric runs f under the metrics lock.
func (s *Scheduler) metric(f func()) {
	s.met.Lock()
	f()
	s.met.Unlock()
}

// Fingerprint returns the code fingerprint baked into this scheduler's
// cache keys.
func (s *Scheduler) Fingerprint() string { return s.cfg.Fingerprint }

// Submit admits one job. On a warm cache the returned status is already
// done (Cached=true) and nothing is queued; otherwise the job is queued
// unless the queue is full (QueueFullError) or the scheduler is draining
// (ErrDraining).
func (s *Scheduler) Submit(req Request) (JobStatus, error) {
	if !experiments.Known(req.Experiment) {
		return JobStatus{}, fmt.Errorf("%w %q (have %v)", ErrUnknownExperiment, req.Experiment, experiments.IDs())
	}
	s.metric(func() { s.met.submitted.Inc() })
	key := store.ResultKey(req.Experiment, req.Options, s.cfg.Fingerprint)

	// Admission-time cache hit: complete without consuming queue capacity.
	if _, ok, err := s.cfg.Store.Get(key); err == nil && ok {
		j := s.register(req, key)
		j.finish(key, true)
		s.metric(func() { s.met.hits.Inc() })
		return j.status(), nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.metric(func() { s.met.rejected.Inc() })
		return JobStatus{}, ErrDraining
	}
	j := s.registerLocked(req, key)
	select {
	case s.queue <- j:
		s.metric(func() { s.met.queueDepth.Set(int64(len(s.queue))) })
		return j.status(), nil
	default:
		delete(s.jobs, j.id)
		j.cancel()
		s.metric(func() { s.met.rejected.Inc() })
		return JobStatus{}, &QueueFullError{Capacity: cap(s.queue)}
	}
}

func (s *Scheduler) register(req Request, key string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.registerLocked(req, key)
}

func (s *Scheduler) registerLocked(req Request, key string) *job {
	s.nextSeq++
	j := &job{
		seq:        s.nextSeq,
		id:         fmt.Sprintf("job-%d", s.nextSeq),
		experiment: req.Experiment,
		opts:       req.Options,
		cacheKey:   key,
		state:      StateQueued,
		created:    time.Now(),
	}
	j.ctx, j.cancel = context.WithCancel(s.rootCtx)
	s.jobs[j.id] = j
	return j
}

// Job returns the status of one job.
func (s *Scheduler) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// Jobs lists every job in submission order.
func (s *Scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	js := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	s.mu.Unlock()
	sort.Slice(js, func(a, b int) bool { return js[a].seq < js[b].seq })
	out := make([]JobStatus, len(js))
	for i, j := range js {
		out[i] = j.status()
	}
	return out
}

// Cancel cancels a job's context. A queued job fails when a worker
// dequeues it; a running job unwinds at its next (point, run) boundary.
// It reports whether the job exists.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if ok {
		j.cancel()
	}
	return ok
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.metric(func() { s.met.queueDepth.Set(int64(len(s.queue))) })
		s.runJob(j)
	}
}

func (s *Scheduler) runJob(j *job) {
	if err := j.ctx.Err(); err != nil {
		j.fail(err)
		s.metric(func() { s.met.failed.Inc() })
		return
	}
	j.setRunning()
	s.metric(func() { s.met.inflight.Add(1) })
	defer s.metric(func() { s.met.inflight.Add(-1) })

	start := time.Now()
	entry, hit, err := s.cfg.Store.GetOrCompute(j.cacheKey, func() (*store.Entry, error) {
		return s.compute(j)
	})
	s.metric(func() {
		s.met.latency.Observe(time.Since(start).Seconds())
		if err != nil {
			s.met.failed.Inc()
		} else if hit {
			s.met.hits.Inc()
		} else {
			s.met.misses.Inc()
		}
	})
	if err != nil {
		j.fail(err)
		return
	}
	j.finish(entry.Key, hit)
}

// compute runs the simulation behind a cache miss and builds its store
// entry. A panicking experiment is converted to a job failure so one bad
// simulation cannot take a serving worker down.
func (s *Scheduler) compute(j *job) (e *store.Entry, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: experiment %s panicked: %v", j.experiment, r)
		}
	}()
	opt := j.opts.Options()
	opt.Parallelism = s.cfg.SimParallelism
	opt.Context = j.ctx
	opt.Progress = j.onProgress
	var sink *obs.Sink
	if s.cfg.CollectMetrics {
		sink = obs.NewSink(obs.Config{Metrics: true})
		opt.Obs = sink
	}
	t0 := time.Now()
	res, err := experiments.Run(j.experiment, opt)
	if err != nil {
		return nil, err
	}
	wall := time.Since(t0)
	entry := &store.Entry{
		Key:         j.cacheKey,
		Experiment:  j.experiment,
		Title:       res.Title,
		Options:     j.opts,
		Fingerprint: s.cfg.Fingerprint,
		Tables:      res.String(),
		CreatedAt:   time.Now().UTC(),
	}
	bench := report.BenchRecord{
		ID:          j.experiment,
		Title:       res.Title,
		Seed:        j.opts.Seed,
		Runs:        j.opts.Runs,
		Quick:       j.opts.Quick,
		Parallelism: s.simParallelism(),
		WallSeconds: wall.Seconds(),
	}
	if sink != nil {
		merged := sink.Merged()
		// The job's own sink isolates its event count from concurrent jobs,
		// unlike the process-global sim.TotalEvents counter.
		bench.SimEvents = merged.FindCounter("sim", "events", "").Value()
		var buf bytes.Buffer
		if err := merged.WriteMetricsJSON(&buf); err == nil {
			entry.Metrics = buf.Bytes()
		}
	}
	bench.Finish()
	entry.Bench = &bench
	return entry, nil
}

func (s *Scheduler) simParallelism() int {
	if s.cfg.SimParallelism > 0 {
		return s.cfg.SimParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// WriteMetricsText dumps the scheduler's obs registry in Prometheus text
// format; /metricsz serves it.
func (s *Scheduler) WriteMetricsText(w io.Writer) error {
	s.met.Lock()
	defer s.met.Unlock()
	return s.met.rec.WritePrometheusText(w)
}

// Draining reports whether Drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission (Submit returns ErrDraining), lets queued and
// in-flight jobs finish, and waits for the worker pool to exit. If ctx
// expires first, outstanding jobs are cancelled through their contexts and
// Drain still waits for the pool to unwind before returning ctx's error.
// Drain is idempotent.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.rootCancel()
		<-done
		return ctx.Err()
	}
}
