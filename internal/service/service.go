// Package service is the experiment-serving layer behind cmd/qsmd: a job
// scheduler wrapping experiments.Run with a bounded admission queue, a
// content-addressed result cache, per-job lifecycle tracking
// (queued → running → done/failed) with live progress, context-based
// cancellation, and graceful drain. Every shape here — admission control,
// memoization, request lifecycle, retry budgets, drain on shutdown — is the
// standard serving-stack vocabulary, applied to parameter-sweep simulations.
//
// Identical submissions are served from the store: a hit at admission
// completes the job without queuing, and two concurrent identical jobs
// share one simulation through the store's single-flight path. Because the
// simulator is deterministic in the keyed options, cached tables are
// byte-identical to recomputation.
//
// Failures are contained per attempt: each execution attempt runs under an
// optional per-job timeout, a failed (non-cancelled) attempt is retried up
// to a bounded budget, and a panicking experiment is converted to an
// attempt failure rather than taking a worker down. An optional
// faults.Injector drives worker panics and artificial slowness through the
// same paths deterministically, which is how the chaos harness in
// internal/faults proves that injected failures never change served
// results.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/store"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// QueueFullError is the typed admission-control rejection returned when the
// submission queue is at capacity. Callers see it immediately instead of
// blocking; the HTTP layer maps it to 429.
type QueueFullError struct{ Capacity int }

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: queue full (capacity %d)", e.Capacity)
}

// ErrDraining rejects submissions arriving after Drain began.
var ErrDraining = errors.New("service: shutting down")

// ErrUnknownExperiment rejects submissions naming no registered experiment.
var ErrUnknownExperiment = errors.New("service: unknown experiment")

// Config parameterises a Scheduler.
type Config struct {
	// Store is the content-addressed result cache. Required.
	Store *store.Store
	// QueueCap bounds the submission queue; admission beyond it returns
	// QueueFullError. <= 0 means 64.
	QueueCap int
	// AgingStep is the queue's starvation-protection quantum: a queued
	// job's effective priority rises by one per AgingStep waited, so
	// low-priority work eventually outranks a flood of fresh high-priority
	// submissions. <= 0 means 5s.
	AgingStep time.Duration
	// Workers is the number of jobs simulated concurrently. <= 0 means 2.
	Workers int
	// SimParallelism is each job's Options.Parallelism (how many worker
	// goroutines one simulation sweep fans across). 0 means GOMAXPROCS.
	SimParallelism int
	// Fingerprint identifies the code in cache keys; empty means
	// store.Fingerprint(). Cluster nodes must share one fingerprint or
	// their ring placements disagree.
	Fingerprint string
	// NodeName identifies this scheduler's node in a cluster; it is stamped
	// into every JobStatus so clients (and the qsmload balance report) can
	// tell which node executed a job. Empty for single-node deployments.
	NodeName string
	// CollectMetrics attaches an obs sink to each computed job and stores
	// the aggregated metrics JSON (and simulated-event counts) in entries.
	CollectMetrics bool
	// JobTimeout bounds each execution attempt; an attempt exceeding it is
	// cancelled through its context and counts as a failure (retried while
	// budget remains). 0 means no per-attempt limit.
	JobTimeout time.Duration
	// JobRetries is how many additional attempts a failed job gets beyond
	// the first. Cancelled jobs are never retried; the budget only covers
	// transient failures (panics, timeouts, injected faults). 0 retries.
	JobRetries int
	// Faults optionally injects worker panics and artificial slowness into
	// the compute path; nil injects nothing.
	Faults *faults.Injector
	// StateHook, when non-nil, is called synchronously with a job's status
	// after every lifecycle transition (queued, each running attempt, done,
	// failed). It runs on scheduler and worker goroutines outside scheduler
	// locks; it must be safe for concurrent use and must not call back into
	// the scheduler. Tests use it for channel-based synchronization instead
	// of wall-clock polling.
	StateHook func(JobStatus)
	// Tenants switches the API into keyed multi-tenant mode: submissions
	// must carry a configured tenant's API key, and each tenant's
	// concurrent-job and queue-depth quotas are enforced at admission
	// (QuotaError → HTTP 429 + Retry-After). Empty keeps today's anonymous
	// behavior exactly.
	Tenants []TenantConfig
	// StreamBuffer bounds each event-stream subscriber's in-flight buffer;
	// overflow drops events for that subscriber (surfaced as a dropped
	// marker with a resume ID) instead of ever blocking a scheduler worker.
	// <= 0 means 64.
	StreamBuffer int
	// StreamLogCap bounds each stream's retained event log, the window a
	// Last-Event-ID reconnect can replay. <= 0 means 256.
	StreamLogCap int
	// StreamHeartbeat is the idle event-stream heartbeat period (SSE
	// comment frames). <= 0 means 15s.
	StreamHeartbeat time.Duration
	// Log receives request-scoped structured log lines (submissions, state
	// transitions, fault annotations), each stamped with the job's trace ID.
	// Nil logs nothing.
	Log *obs.Logger
	// Tracer collects wall-clock spans across the serving layers — HTTP
	// handling, queue wait, scheduler attempts, store I/O, runner execution —
	// tagged with per-request trace IDs. Nil traces nothing.
	Tracer *obs.WallTracer
	// CollectTrace additionally gives each computed job a sim-time span
	// trace, retained on the job so /v1/jobs/{id}/trace can export it merged
	// with the job's wall-clock spans. Requires CollectMetrics-style sinks;
	// off by default because sim traces are large.
	CollectTrace bool
}

// Request is one experiment submission.
type Request struct {
	Experiment string
	Options    experiments.OptionsKey
	// TraceID, when a valid obs trace ID, threads an end-to-end trace
	// through the job: every wall-clock span and log line the job produces
	// carries it. Empty (or invalid) means the scheduler assigns one when
	// tracing is enabled.
	TraceID string
	// Tenant optionally names the submitting tenant for fair queuing:
	// dequeue ties break toward the tenant served least recently, so one
	// tenant flooding the queue cannot monopolise the workers. Empty is a
	// valid (shared) tenant.
	Tenant string
	// Priority orders dequeue: higher runs first, subject to aging (see
	// Config.AgingStep). Zero is the default class.
	Priority int
	// Deadline, when positive, is the submission's latency budget; among
	// equal aged priorities the earliest absolute deadline dequeues first,
	// and deadlined work outranks open-ended work.
	Deadline time.Duration
}

// JobProgress is a point-in-time view of a running sweep.
type JobProgress struct {
	// Done counts completed (sweep-point, run) simulation jobs across all
	// of the experiment's sweeps so far.
	Done int `json:"done"`
	// SweepPoints and SweepRuns describe the current sweep's grid, when a
	// sweep has reported progress.
	SweepPoints int `json:"sweep_points,omitempty"`
	SweepRuns   int `json:"sweep_runs,omitempty"`
}

// JobStatus is the externally visible snapshot of a job; it is what the
// HTTP API serializes.
type JobStatus struct {
	ID         string                 `json:"id"`
	Experiment string                 `json:"experiment"`
	Options    experiments.OptionsKey `json:"options"`
	// TraceID is the trace this job's spans and log lines are tagged with;
	// empty when tracing is disabled.
	TraceID string `json:"trace_id,omitempty"`
	// Node names the cluster node that ran (or is running) the job; empty
	// on single-node deployments.
	Node  string `json:"node,omitempty"`
	State State  `json:"state"`
	// Tenant and Priority echo the submission's queuing identity.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// Cached reports the job was served from the result store (at admission
	// or by sharing another job's in-flight computation).
	Cached   bool   `json:"cached"`
	CacheKey string `json:"cache_key"`
	// Coalesced reports the job was batch-admitted behind an identical
	// queued submission and served from its leader's single simulation.
	Coalesced bool `json:"coalesced,omitempty"`
	// ResultKey addresses the result under /v1/results/{key} once done.
	ResultKey string `json:"result_key,omitempty"`
	Error     string `json:"error,omitempty"`
	// Attempt is the number of execution attempts started so far (1 on the
	// first run; higher after retries). Zero for jobs served at admission.
	Attempt        int         `json:"attempt,omitempty"`
	Progress       JobProgress `json:"progress"`
	CreatedAt      time.Time   `json:"created_at"`
	ElapsedSeconds float64     `json:"elapsed_seconds"`
}

// job is the scheduler-internal mutable record behind a JobStatus.
type job struct {
	seq        int
	id         string
	experiment string
	opts       experiments.OptionsKey
	cacheKey   string
	traceID    string
	node       string
	tenant     string
	priority   int
	// deadline is the absolute EDF key (zero = no deadline).
	deadline time.Time
	// ctx carries the job's obs.TraceContext, so store I/O and compute done
	// under it trace and log with the job's identity.
	ctx    context.Context
	cancel context.CancelFunc
	// log is the job-scoped logger (trace ID, job id, short key baked in).
	log *obs.Logger
	// queueSpan is the admission-to-dequeue wall span; set before the job is
	// enqueued and ended by the dequeuing worker (ordered by the queue
	// channel).
	queueSpan *obs.WallSpan
	// events is the job's replayable stream log behind
	// GET /v1/jobs/{id}/events.
	events *eventLog

	mu sync.Mutex
	// quotaHeld marks the job as holding its tenant's concurrency slot,
	// released exactly once on the first terminal notify.
	quotaHeld bool
	state     State
	cached    bool
	coalesced bool
	errMsg    string
	resultKey string
	attempt   int
	progress  JobProgress
	created   time.Time
	finished  time.Time
	// simTrace holds the job's merged sim-time recorder once computed, for
	// the /v1/jobs/{id}/trace merged export. Nil for cache hits and when
	// CollectTrace is off.
	simTrace *obs.Recorder
}

// setSimTrace retains the job's merged sim-time recorder for trace export.
func (j *job) setSimTrace(rec *obs.Recorder) {
	j.mu.Lock()
	j.simTrace = rec
	j.mu.Unlock()
}

// SimTrace returns the job's retained sim-time recorder, or nil.
func (j *job) SimTrace() *obs.Recorder {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.simTrace
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	return JobStatus{
		ID:             j.id,
		Experiment:     j.experiment,
		Options:        j.opts,
		TraceID:        j.traceID,
		Node:           j.node,
		Tenant:         j.tenant,
		Priority:       j.priority,
		State:          j.state,
		Cached:         j.cached,
		Coalesced:      j.coalesced,
		CacheKey:       j.cacheKey,
		ResultKey:      j.resultKey,
		Error:          j.errMsg,
		Attempt:        j.attempt,
		Progress:       j.progress,
		CreatedAt:      j.created,
		ElapsedSeconds: end.Sub(j.created).Seconds(),
	}
}

func (j *job) startAttempt() {
	j.mu.Lock()
	j.state = StateRunning
	j.attempt++
	j.mu.Unlock()
}

func (j *job) finish(resultKey string, cached bool) {
	j.mu.Lock()
	j.state = StateDone
	j.resultKey = resultKey
	j.cached = cached
	j.finished = time.Now()
	j.mu.Unlock()
}

func (j *job) fail(err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.errMsg = err.Error()
	j.finished = time.Now()
	j.mu.Unlock()
}

// onProgress feeds experiments.Options.Progress; it runs on simulation
// worker goroutines.
func (j *job) onProgress(p experiments.Progress) {
	j.mu.Lock()
	j.progress.Done++
	j.progress.SweepPoints = p.Points
	j.progress.SweepRuns = p.Runs
	j.mu.Unlock()
	j.publishProgress()
}

// Scheduler accepts experiment jobs, runs them on a bounded worker pool,
// and memoizes results through the store.
type Scheduler struct {
	cfg        Config
	queue      *admitQueue
	started    time.Time
	rootCtx    context.Context
	rootCancel context.CancelFunc
	drainCh    chan struct{}
	wg         sync.WaitGroup

	streams *streamHub
	tenants *tenantRegistry

	mu        sync.Mutex
	jobs      map[string]*job
	nextSeq   int
	batches   map[string]*batchStream
	nextBatch int
	draining  bool

	// met guards the obs registry: obs recorders are single-goroutine by
	// design, and here workers and scrape handlers share one.
	met struct {
		sync.Mutex
		rec        *obs.Recorder
		submitted  *obs.Counter
		rejected   *obs.Counter
		failed     *obs.Counter
		retried    *obs.Counter
		hits       *obs.Counter
		misses     *obs.Counter
		queueDepth *obs.Gauge
		inflight   *obs.Gauge
		latency    *obs.Histogram
		coalesced  *obs.Counter
		batches    *obs.Counter
	}
}

// New starts a scheduler and its worker pool. Stop it with Drain.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Store == nil {
		return nil, errors.New("service: Config.Store is required")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Fingerprint == "" {
		cfg.Fingerprint = store.Fingerprint()
	}
	if cfg.AgingStep <= 0 {
		cfg.AgingStep = 5 * time.Second
	}
	tenants, err := newTenantRegistry(cfg.Tenants)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:     cfg,
		queue:   newAdmitQueue(cfg.QueueCap, cfg.AgingStep),
		started: time.Now(),
		jobs:    map[string]*job{},
		batches: map[string]*batchStream{},
		streams: newStreamHub(),
		tenants: tenants,
		drainCh: make(chan struct{}),
	}
	s.rootCtx, s.rootCancel = context.WithCancel(context.Background())
	rec := obs.New(obs.Config{Metrics: true})
	s.met.rec = rec
	s.met.submitted = rec.Counter("service", "jobs_submitted", "")
	s.met.rejected = rec.Counter("service", "jobs_rejected", "")
	s.met.failed = rec.Counter("service", "jobs_failed", "")
	s.met.retried = rec.Counter("service", "jobs_retried", "")
	s.met.hits = rec.Counter("service", "cache_hits", "")
	s.met.misses = rec.Counter("service", "cache_misses", "")
	s.met.queueDepth = rec.Gauge("service", "queue_depth", "")
	s.met.inflight = rec.Gauge("service", "inflight_jobs", "")
	s.met.latency = rec.Histogram("service", "job_latency_seconds", "", obs.ExpBuckets(0.001, 4, 12))
	s.met.coalesced = rec.Counter("service", "jobs_coalesced", "")
	s.met.batches = rec.Counter("service", "coalesced_batches", "")
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// metric runs f under the metrics lock.
func (s *Scheduler) metric(f func()) {
	s.met.Lock()
	f()
	s.met.Unlock()
}

// notify fans out j's current status after a lifecycle transition: the
// state hook, the job's event stream, and — exactly once, on the first
// terminal transition — the tenant quota release. Call sites hold no
// scheduler locks. Every path to a terminal state funnels through here
// (done, failed, cancelled before start, coalesced, drained), which is what
// makes the quota release and the stream close exhaustive.
func (s *Scheduler) notify(j *job) {
	st := j.status()
	if s.cfg.StateHook != nil {
		s.cfg.StateHook(st)
	}
	j.publishState(st)
	if st.State == StateDone || st.State == StateFailed {
		s.releaseQuota(j)
	}
}

// releaseQuota returns j's tenant concurrency slot, exactly once.
func (s *Scheduler) releaseQuota(j *job) {
	j.mu.Lock()
	held := j.quotaHeld
	j.quotaHeld = false
	j.mu.Unlock()
	if held {
		s.tenants.release(j.tenant)
	}
}

// Fingerprint returns the code fingerprint baked into this scheduler's
// cache keys.
func (s *Scheduler) Fingerprint() string { return s.cfg.Fingerprint }

// Submit admits one job. On a warm cache the returned status is already
// done (Cached=true) and nothing is queued; otherwise the job is queued
// unless the queue is full (QueueFullError) or the scheduler is draining
// (ErrDraining).
func (s *Scheduler) Submit(req Request) (JobStatus, error) {
	return s.SubmitCtx(context.Background(), req)
}

// SubmitCtx is Submit under a request context: the admission-time store read
// traces and logs against the submitting request (its obs.TraceContext,
// when present), and the job inherits the request's trace ID so every span
// and log line downstream — queue wait, attempts, store I/O, runner — shares
// it. ctx scopes admission only; job execution is bound to the scheduler's
// lifetime, not the submitting request's.
func (s *Scheduler) SubmitCtx(ctx context.Context, req Request) (JobStatus, error) {
	if !experiments.Known(req.Experiment) {
		return JobStatus{}, fmt.Errorf("%w %q (have %v)", ErrUnknownExperiment, req.Experiment, experiments.IDs())
	}
	s.metric(func() { s.met.submitted.Inc() })
	key := store.ResultKey(req.Experiment, req.Options, s.cfg.Fingerprint)
	traceID := s.resolveTraceID(ctx, req)

	// Admission-time cache hit: complete without consuming queue capacity.
	// A store read error here is deliberately treated as a miss — the queue
	// path recomputes.
	if _, ok, err := s.cfg.Store.GetCtx(ctx, key); err == nil && ok {
		j := s.register(req, key, traceID)
		j.queueSpan.End() // never queued; commit the ~0 wait for a complete timeline
		j.finish(key, true)
		s.metric(func() { s.met.hits.Inc() })
		j.log.Info("job served from cache at admission", "experiment", req.Experiment, "state", StateDone)
		s.notify(j)
		return j.status(), nil
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metric(func() { s.met.rejected.Inc() })
		s.logFor(traceID).Warn("submission rejected: draining", "experiment", req.Experiment)
		return JobStatus{}, ErrDraining
	}
	// Tenant quota gates admission after the cache-hit check (a cached
	// result costs nothing and never consumes quota) and before the job
	// exists, so a rejection leaves no trace beyond the counters.
	held, err := s.tenants.acquire(req.Tenant, s.queue.TenantDepth(req.Tenant))
	if err != nil {
		s.mu.Unlock()
		s.metric(func() { s.met.rejected.Inc() })
		s.logFor(traceID).Warn("submission rejected: tenant over quota",
			"experiment", req.Experiment, "tenant", req.Tenant, "error", err)
		return JobStatus{}, err
	}
	j := s.registerLocked(req, key, traceID)
	j.mu.Lock()
	j.quotaHeld = held
	j.mu.Unlock()
	full := !s.queue.push(j)
	if full {
		delete(s.jobs, j.id)
	}
	s.mu.Unlock()
	if full {
		j.cancel()
		s.releaseQuota(j)
		s.metric(func() { s.met.rejected.Inc() })
		j.log.Warn("submission rejected: queue full", "experiment", req.Experiment, "capacity", s.queue.Cap())
		return JobStatus{}, &QueueFullError{Capacity: s.queue.Cap()}
	}
	depth := s.queue.Len()
	s.metric(func() { s.met.queueDepth.Set(int64(depth)) })
	j.log.Info("job queued", "experiment", req.Experiment, "state", StateQueued, "queue_depth", depth,
		"tenant", j.tenant, "priority", j.priority)
	s.notify(j)
	return j.status(), nil
}

// resolveTraceID picks the trace ID a submission runs under: a valid ID from
// the request, else the submitting context's, else (when tracing or logging
// is on) a fresh one. Untraced, unlogged schedulers leave it empty.
func (s *Scheduler) resolveTraceID(ctx context.Context, req Request) string {
	if obs.ValidTraceID(req.TraceID) {
		return req.TraceID
	}
	if tc := obs.TraceContextFrom(ctx); tc != nil && tc.ID != "" {
		return tc.ID
	}
	if s.cfg.Tracer.Enabled() || s.cfg.Log.Enabled() {
		return obs.NewTraceID()
	}
	return ""
}

// logFor returns the scheduler logger annotated with a trace ID.
func (s *Scheduler) logFor(traceID string) *obs.Logger {
	if traceID == "" {
		return s.cfg.Log
	}
	return s.cfg.Log.With("trace_id", traceID)
}

func (s *Scheduler) register(req Request, key, traceID string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.registerLocked(req, key, traceID)
}

func (s *Scheduler) registerLocked(req Request, key, traceID string) *job {
	s.nextSeq++
	// Cluster nodes namespace job IDs with their node name: IDs cross node
	// boundaries when a forwarded submit's ID is later polled on another
	// node, and bare sequence numbers would collide across the cluster.
	id := fmt.Sprintf("job-%d", s.nextSeq)
	if s.cfg.NodeName != "" {
		id = fmt.Sprintf("job-%s-%d", s.cfg.NodeName, s.nextSeq)
	}
	j := &job{
		seq:        s.nextSeq,
		id:         id,
		experiment: req.Experiment,
		opts:       req.Options,
		cacheKey:   key,
		traceID:    traceID,
		node:       s.cfg.NodeName,
		tenant:     req.Tenant,
		priority:   req.Priority,
		state:      StateQueued,
		created:    time.Now(),
	}
	if req.Deadline > 0 {
		j.deadline = j.created.Add(req.Deadline)
	}
	j.log = s.logFor(traceID).With("job", j.id, "key", store.ShortKey(key))
	j.events = newEventLog(id, s.cfg.StreamLogCap, s.streams)
	j.ctx, j.cancel = context.WithCancel(s.rootCtx)
	// The job's context carries its trace identity so store I/O and compute
	// under it annotate the right trace.
	j.ctx = obs.WithTraceContext(j.ctx, &obs.TraceContext{ID: traceID, Tracer: s.cfg.Tracer, Log: j.log})
	j.queueSpan = s.cfg.Tracer.Start(traceID, "queue", "queue", "queue-wait",
		obs.WArg{Key: "job", Val: j.id}, obs.WArg{Key: "experiment", Val: j.experiment})
	s.jobs[j.id] = j
	return j
}

// Job returns the status of one job.
func (s *Scheduler) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// Jobs lists every job in submission order.
func (s *Scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	js := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	s.mu.Unlock()
	sort.Slice(js, func(a, b int) bool { return js[a].seq < js[b].seq })
	out := make([]JobStatus, len(js))
	for i, j := range js {
		out[i] = j.status()
	}
	return out
}

// Cancel cancels a job's context. A queued job fails when a worker
// dequeues it; a running job unwinds at its next (point, run) boundary.
// It reports whether the job exists.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if ok {
		j.cancel()
	}
	return ok
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		batch, ok := s.queue.popBatch()
		if !ok {
			return
		}
		depth := s.queue.Len()
		s.metric(func() { s.met.queueDepth.Set(int64(depth)) })
		s.runBatch(batch)
	}
}

// runBatch executes one dequeued batch: the leader runs the simulation, and
// every coalesced follower (identical cache key, possibly other tenants) is
// completed from the leader's result without touching a worker. A cancelled
// or failed leader does not taint its followers: the next follower is
// promoted to leader and runs its own attempt loop — one simulation still
// serves everyone behind it — so cancelling a batch leader costs the
// followers nothing but their place in line.
func (s *Scheduler) runBatch(batch []*job) {
	if len(batch) > 1 {
		s.metric(func() { s.met.batches.Inc() })
		batch[0].log.Info("batch admission coalesced identical submissions",
			"followers", len(batch)-1, "experiment", batch[0].experiment)
	}
	for i := 0; i < len(batch); i++ {
		leader := batch[i]
		if i > 0 {
			leader.log.Info("follower promoted to batch leader", "cancelled_leader", batch[i-1].id)
		}
		resultKey, ok := s.runJob(leader)
		if !ok {
			// Leader cancelled or failed: promote the next follower. runJob
			// already failed this job with its own error.
			continue
		}
		for _, f := range batch[i+1:] {
			f.queueSpan.End()
			if err := f.ctx.Err(); err != nil {
				f.fail(err)
				s.metric(func() { s.met.failed.Inc() })
				f.log.Warn("job cancelled before start", "error", err)
				s.notify(f)
				continue
			}
			f.mu.Lock()
			f.coalesced = true
			f.mu.Unlock()
			f.finish(resultKey, true)
			s.metric(func() { s.met.coalesced.Inc() })
			f.log.Info("job served from coalesced batch", "leader", leader.id, "state", StateDone)
			s.notify(f)
		}
		return
	}
}

// runJob executes one job's attempt loop: each attempt runs under the
// per-job timeout, and a failed attempt is retried while the job is not
// cancelled and the retry budget lasts. It returns the job's result key
// and whether it completed, so batch followers can ride the outcome.
func (s *Scheduler) runJob(j *job) (string, bool) {
	j.queueSpan.End()
	if err := j.ctx.Err(); err != nil {
		j.fail(err)
		s.metric(func() { s.met.failed.Inc() })
		j.log.Warn("job cancelled before start", "error", err)
		s.notify(j)
		return "", false
	}
	s.metric(func() { s.met.inflight.Add(1) })
	defer s.metric(func() { s.met.inflight.Add(-1) })

	start := time.Now()
	for {
		j.startAttempt()
		attempt := j.attempts()
		j.log.Info("attempt started", "attempt", attempt, "experiment", j.experiment, "state", StateRunning)
		s.notify(j)
		sp := s.cfg.Tracer.Start(j.traceID, "scheduler", "attempt", fmt.Sprintf("attempt %d", attempt),
			obs.WArg{Key: "job", Val: j.id}, obs.WArg{Key: "experiment", Val: j.experiment})
		entry, hit, err := s.attempt(j)
		if err == nil {
			sp.Annotate("outcome", "done")
			sp.End()
			s.metric(func() {
				s.met.latency.Observe(time.Since(start).Seconds())
				if hit {
					s.met.hits.Inc()
				} else {
					s.met.misses.Inc()
				}
			})
			j.finish(entry.Key, hit)
			j.log.Info("job done", "attempt", attempt, "cached", hit, "state", StateDone,
				"elapsed_seconds", time.Since(start).Seconds())
			s.notify(j)
			return entry.Key, true
		}
		sp.Annotate("outcome", "failed")
		sp.Annotate("error", err.Error())
		if inj := new(faults.InjectedError); errors.As(err, &inj) {
			sp.Annotate("fault", inj.Class.String())
		}
		sp.End()
		if j.ctx.Err() == nil && j.attempts() <= s.cfg.JobRetries {
			s.metric(func() { s.met.retried.Inc() })
			j.log.Warn("attempt failed, retrying", "attempt", attempt, "error", err)
			continue
		}
		s.metric(func() {
			s.met.latency.Observe(time.Since(start).Seconds())
			s.met.failed.Inc()
		})
		j.fail(err)
		j.log.Error("job failed", "attempt", attempt, "state", StateFailed, "error", err,
			"elapsed_seconds", time.Since(start).Seconds())
		s.notify(j)
		return "", false
	}
}

func (j *job) attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempt
}

// attempt runs one execution attempt through the store's single-flight
// path, bounded by the per-job timeout.
func (s *Scheduler) attempt(j *job) (*store.Entry, bool, error) {
	runCtx, cancel := j.ctx, func() {}
	if s.cfg.JobTimeout > 0 {
		runCtx, cancel = context.WithTimeout(j.ctx, s.cfg.JobTimeout)
	}
	defer cancel()
	return s.cfg.Store.GetOrComputeCtx(runCtx, j.cacheKey, func() (*store.Entry, error) {
		return s.compute(j, runCtx)
	})
}

// compute runs the simulation behind a cache miss and builds its store
// entry. A panicking experiment is converted to an attempt failure so one
// bad simulation cannot take a serving worker down. The fault injector's
// SlowJob and WorkerPanic classes act here, upstream of the experiment,
// so injected failures exercise exactly the paths real ones take.
func (s *Scheduler) compute(j *job, ctx context.Context) (e *store.Entry, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: experiment %s panicked: %v", j.experiment, r)
		}
	}()
	if d := s.cfg.Faults.SlowDelay(); d > 0 {
		s.cfg.Tracer.Instant(j.traceID, "scheduler", "fault:"+faults.SlowJob.String(),
			obs.WArg{Key: "fault", Val: faults.SlowJob.String()}, obs.WArg{Key: "job", Val: j.id})
		j.log.Warn("injected slow job", "fault", faults.SlowJob.String(), "delay", d)
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	if s.cfg.Faults.Fire(faults.WorkerPanic) {
		s.cfg.Tracer.Instant(j.traceID, "scheduler", "fault:"+faults.WorkerPanic.String(),
			obs.WArg{Key: "fault", Val: faults.WorkerPanic.String()}, obs.WArg{Key: "job", Val: j.id})
		j.log.Warn("injected worker panic", "fault", faults.WorkerPanic.String())
		panic("faults: injected worker panic")
	}
	opt := j.opts.Options()
	opt.Parallelism = s.cfg.SimParallelism
	opt.Context = ctx
	opt.Progress = j.onProgress
	opt.Wall = s.cfg.Tracer
	opt.TraceID = j.traceID
	var sink *obs.Sink
	if s.cfg.CollectMetrics || s.cfg.CollectTrace {
		sink = obs.NewSink(obs.Config{Metrics: s.cfg.CollectMetrics, Trace: s.cfg.CollectTrace})
		opt.Obs = sink
	}
	runSpan := s.cfg.Tracer.Start(j.traceID, "runner", "run", j.experiment,
		obs.WArg{Key: "job", Val: j.id})
	t0 := time.Now()
	res, err := experiments.Run(j.experiment, opt)
	if err != nil {
		runSpan.Annotate("outcome", "error")
		runSpan.End()
		return nil, err
	}
	runSpan.End()
	wall := time.Since(t0)
	entry := &store.Entry{
		Key:         j.cacheKey,
		Experiment:  j.experiment,
		Title:       res.Title,
		Options:     j.opts,
		Fingerprint: s.cfg.Fingerprint,
		Tables:      res.String(),
		CreatedAt:   time.Now().UTC(),
	}
	bench := report.BenchRecord{
		ID:          j.experiment,
		Title:       res.Title,
		Seed:        j.opts.Seed,
		Runs:        j.opts.Runs,
		Quick:       j.opts.Quick,
		Parallelism: s.simParallelism(),
		WallSeconds: wall.Seconds(),
		Extra:       res.Extra,
	}
	if sink != nil {
		merged := sink.Merged()
		// The job's own sink isolates its event count from concurrent jobs,
		// unlike the process-global sim.TotalEvents counter.
		bench.SimEvents = merged.FindCounter("sim", "events", "").Value()
		if s.cfg.CollectMetrics {
			var buf bytes.Buffer
			if err := merged.WriteMetricsJSON(&buf); err == nil {
				entry.Metrics = buf.Bytes()
			}
		}
		if s.cfg.CollectTrace {
			j.setSimTrace(merged)
		}
	}
	bench.Finish()
	entry.Bench = &bench
	return entry, nil
}

func (s *Scheduler) simParallelism() int {
	if s.cfg.SimParallelism > 0 {
		return s.cfg.SimParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// WriteMetricsText dumps the scheduler's obs registry followed by the
// store's self-metrics, the work-stealing scheduler's process totals, and
// (when armed) the fault injector's per-class fire counters, all in
// Prometheus text format; /metricsz serves it. The registries use disjoint
// subsystems, so the concatenation is a valid exposition.
func (s *Scheduler) WriteMetricsText(w io.Writer) error {
	s.met.Lock()
	err := s.met.rec.WritePrometheusText(w)
	s.met.Unlock()
	if err != nil {
		return err
	}
	if err := s.cfg.Store.WriteMetricsText(w); err != nil {
		return err
	}
	// The steal/overflow/park totals live in process-global atomics (they
	// must stay out of the deterministic per-sweep sinks, whose merged
	// metrics are byte-identical at any parallelism); render them through a
	// scrape-time recorder so the exposition format matches the rest.
	t := sched.Totals()
	srec := obs.New(obs.Config{Metrics: true})
	srec.Counter("sched", "steals", "").Add(t.Steals)
	srec.Counter("sched", "overflows", "").Add(t.Overflows)
	srec.Counter("sched", "parks", "").Add(t.Parks)
	if err := srec.WritePrometheusText(w); err != nil {
		return err
	}
	// Stream fan-out counters live in atomics (publishers must never take
	// the metrics lock on the notify path); render them scrape-time like
	// the sched totals.
	ss := s.streams.status()
	strec := obs.New(obs.Config{Metrics: true})
	strec.Gauge("stream", "subscribers", "").Set(ss.Subscribers)
	strec.Counter("stream", "subscriptions_opened", "").Add(ss.Opened)
	strec.Counter("stream", "events_published", "").Add(ss.Published)
	strec.Counter("stream", "events_dropped", "").Add(ss.Dropped)
	if err := strec.WritePrometheusText(w); err != nil {
		return err
	}
	if err := s.tenants.writeMetricsText(w); err != nil {
		return err
	}
	if s.cfg.Faults != nil {
		return s.cfg.Faults.WriteMetricsText(w)
	}
	return nil
}

// Draining reports whether Drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// DrainBegun returns a channel closed when Drain first begins; tests use it
// to synchronize on drain start without polling.
func (s *Scheduler) DrainBegun() <-chan struct{} { return s.drainCh }

// Drain stops admission (Submit returns ErrDraining), lets queued and
// in-flight jobs finish, and waits for the worker pool to exit. If ctx
// expires first, outstanding jobs are cancelled through their contexts and
// Drain still waits for the pool to unwind before returning ctx's error.
// Drain is idempotent.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.queue.close()
		close(s.drainCh)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.rootCancel()
		<-done
		return ctx.Err()
	}
}
