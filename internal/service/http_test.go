package service_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

func newServer(t *testing.T, cfg service.Config) (*service.Scheduler, *service.Client) {
	t.Helper()
	s := newSched(t, cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s.Scheduler, &service.Client{BaseURL: srv.URL, HTTP: srv.Client()}
}

func TestHTTPSubmitPollFetch(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, c := newServer(t, service.Config{Store: st, CollectMetrics: true})
	ctx := context.Background()

	req := service.SubmitRequest{Experiment: "fig7", Seed: 1, Runs: 2, Quick: true}
	js, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if js.ID == "" || js.CacheKey == "" {
		t.Fatalf("submit response incomplete: %+v", js)
	}
	js, err = c.Wait(ctx, js.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if js.State != service.StateDone {
		t.Fatalf("job = %s (%s)", js.State, js.Error)
	}
	e, err := c.Result(ctx, js.ResultKey)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Tables, "==") || e.Experiment != "fig7" {
		t.Errorf("result entry looks wrong: experiment %q, tables %q...", e.Experiment, firstLine(e.Tables))
	}

	// Resubmission is a cache hit: immediately done, byte-identical tables.
	js2, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if js2.State != service.StateDone || !js2.Cached {
		t.Fatalf("resubmission = state %s cached %v", js2.State, js2.Cached)
	}
	e2, err := c.Result(ctx, js2.ResultKey)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Tables != e.Tables {
		t.Error("cache-hit tables differ from the first run")
	}
}

func TestHTTPErrors(t *testing.T) {
	s, c := newServer(t, service.Config{})
	ctx := context.Background()

	if _, err := c.Submit(ctx, service.SubmitRequest{Experiment: "nope"}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment error = %v", err)
	}
	if _, err := c.Job(ctx, "job-999"); err == nil || !strings.Contains(err.Error(), "HTTP 404") {
		t.Errorf("missing job error = %v", err)
	}
	if _, err := c.Result(ctx, "deadbeef"); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("malformed key error = %v", err)
	}
	if _, err := c.Result(ctx, strings.Repeat("ab", 32)); err == nil || !strings.Contains(err.Error(), "HTTP 404") {
		t.Errorf("missing result error = %v", err)
	}

	// Malformed body straight through the raw API.
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPQueueFull(t *testing.T) {
	started, release := resetBlock()
	defer close(release)
	_, c := newServer(t, service.Config{Workers: 1, QueueCap: 1})
	ctx := context.Background()

	if _, err := c.Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 11, Runs: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := c.Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 12, Runs: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 13, Runs: 1, Quick: true})
	if err == nil || !strings.Contains(err.Error(), "HTTP 429") {
		t.Errorf("over-capacity submit = %v, want HTTP 429", err)
	}
}

func TestHTTPCancel(t *testing.T) {
	started, release := resetBlock()
	_, c := newServer(t, service.Config{Workers: 1, QueueCap: 4})
	ctx := context.Background()

	a, err := c.Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 21, Runs: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	b, err := c.Submit(ctx, service.SubmitRequest{Experiment: "test-block", Seed: 22, Runs: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, "job-999"); err == nil {
		t.Error("cancelling a missing job did not error")
	}
	close(release)
	js, err := c.Wait(ctx, b.ID, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if js.State != service.StateFailed {
		t.Errorf("cancelled job state = %s", js.State)
	}
	if _, err := c.Wait(ctx, a.ID, 5*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	s, c := newServer(t, service.Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status      string `json:"status"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Fingerprint == "" {
		t.Errorf("healthz = %+v", health)
	}

	if _, err := c.Submit(context.Background(), service.SubmitRequest{Experiment: "fig7", Seed: 1, Runs: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "qsm_service_jobs_submitted_total 1") {
		t.Errorf("metricsz missing submission counter:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metricsz content type = %q", ct)
	}

	// Jobs listing includes the submission.
	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(jobs) != 1 || jobs[0].Experiment != "fig7" {
		t.Errorf("job listing = %+v", jobs)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
